// Appendix A.4: hierarchical containment inference (items within cases,
// cases within pallets) as a distributed scenario.
//
// The paper's hierarchy is one engine per containment level; this bench
// quantifies what the second level costs and buys in the distributed
// replay: per-level containment accuracy sampled at inference boundaries,
// and the migration-byte overhead of shipping case→pallet state (collapsed
// weights + contexts, plus readings under full migration) alongside the
// item→case states in the same kInferenceState envelopes.
//
// Expected shape: the item-level error column is *identical* between flat
// and hierarchical runs (the second engine never touches the first), the
// case-level column exists only for hierarchical runs, and hierarchical
// migration bytes exceed flat ones by roughly cases/items ~ the packaging
// ratio (collapsed state is per-object fixed cost). A determinism matrix
// re-runs the hierarchical replay over {in-process, socket} transports ×
// num_threads {0, 1, 4} and verifies accuracy samples, migration bytes,
// and transitive pallet answers are bit-identical.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dist/distributed.h"

namespace rfid {
namespace {

struct RunResult {
  double item_err = 0.0;
  double case_err = 0.0;  // NaN for flat runs
  int64_t inference_bytes = 0;
  int64_t total_bytes = 0;
};

RunResult RunOnce(const SupplyChainSim& sim, MigrationMode mode,
                  bool hierarchical) {
  DistributedOptions opts;
  opts.site.migration = mode;
  opts.site.hierarchical = hierarchical;
  opts.trace = false;  // bench_table5 owns the representative RFID_TRACE
  DistributedSystem sys(&sim, opts);
  sys.Run();
  RunResult r;
  r.item_err = sys.AverageContainmentErrorPercent();
  r.case_err = sys.AverageCaseContainmentErrorPercent();
  r.inference_bytes =
      sys.network().BytesOfKind(MessageKind::kInferenceState);
  r.total_bytes = sys.network().total_bytes();
  return r;
}

std::string FmtOrNa(double v, int precision = 1) {
  return std::isnan(v) ? "n/a" : TablePrinter::Fmt(v, precision);
}

int Main() {
  bench::PrintHeader("Hierarchical inference (Appendix A.4)",
                     "per-level accuracy + migration bytes, "
                     "hierarchical vs flat");

  SupplyChainSim sim(
      bench::MultiWarehouse(/*read_rate=*/0.8, /*anomaly_interval=*/0,
                            /*horizon=*/2400, /*seed=*/8100));
  sim.Run();

  obs::RunReport report = bench::MakeReport("hierarchical");
  TablePrinter table({"Migration", "Levels", "ItemErr%", "CaseErr%",
                      "InfBytes", "TotalBytes", "InfOverhead%"});
  for (MigrationMode mode :
       {MigrationMode::kNone, MigrationMode::kCollapsed,
        MigrationMode::kFullReadings}) {
    const RunResult flat = RunOnce(sim, mode, /*hierarchical=*/false);
    const RunResult hier = RunOnce(sim, mode, /*hierarchical=*/true);
    const double overhead =
        flat.inference_bytes > 0
            ? 100.0 *
                  static_cast<double>(hier.inference_bytes -
                                      flat.inference_bytes) /
                  static_cast<double>(flat.inference_bytes)
            : 0.0;
    table.AddRow({ToString(mode), "item→case", FmtOrNa(flat.item_err),
                  FmtOrNa(flat.case_err),
                  std::to_string(flat.inference_bytes),
                  std::to_string(flat.total_bytes), "-"});
    table.AddRow({ToString(mode), "+case→pallet", FmtOrNa(hier.item_err),
                  FmtOrNa(hier.case_err),
                  std::to_string(hier.inference_bytes),
                  std::to_string(hier.total_bytes),
                  mode == MigrationMode::kNone ? "-"
                                               : TablePrinter::Fmt(overhead,
                                                                   1)});
    for (const RunResult* r : {&flat, &hier}) {
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("migration", ToString(mode));
      row.Set("hierarchical", r == &hier);
      row.Set("item_error_percent", r->item_err);
      row.Set("case_error_percent", r->case_err);
      row.Set("inference_bytes", r->inference_bytes);
      row.Set("total_bytes", r->total_bytes);
      report.AddRow("modes", std::move(row));
    }
  }
  table.Print();
  std::printf(
      "expected shape: ItemErr%% is identical between the flat and\n"
      "hierarchical rows of each mode (the pallet-level engine never\n"
      "touches the item level); CaseErr%% exists only with the hierarchy\n"
      "and scores cases the ground truth holds contained in a pallet;\n"
      "InfBytes grows by roughly the cases/items packaging ratio under\n"
      "collapsed migration (per-object fixed cost).\n\n");

  // ---- Determinism: {in-process, socket} x num_threads {0, 1, 4} ----
  // A smaller chain keeps the 6-replay matrix cheap; the bit-for-bit
  // surface is item + case accuracy samples, every per-kind byte/message
  // counter, and the transitive pallet answer of every item.
  SupplyChainConfig det;
  det.num_warehouses = 4;
  det.shelves_per_warehouse = 4;
  det.cases_per_pallet = 2;
  det.items_per_case = 6;
  det.shelf_stay = 300;
  det.transit_time = 30;
  det.horizon = bench::CapHorizon(1500);
  det.seed = 8200;
  SupplyChainSim det_sim(det);
  det_sim.Run();

  std::unique_ptr<DistributedSystem> reference;
  bool identical = true;
  for (TransportKind transport :
       {TransportKind::kInProcess, TransportKind::kSocket}) {
    for (int threads : {0, 1, 4}) {
      DistributedOptions opts;
      opts.site.migration = MigrationMode::kCollapsed;
      opts.site.hierarchical = true;
      opts.transport = transport;
      opts.num_threads = threads;
      opts.trace = false;
      auto sys = std::make_unique<DistributedSystem>(&det_sim, opts);
      sys->Run();
      if (reference == nullptr) {
        reference = std::move(sys);
        continue;
      }
      bool same = reference->snapshots() == sys->snapshots() &&
                  reference->case_snapshots() == sys->case_snapshots() &&
                  reference->network().total_bytes() ==
                      sys->network().total_bytes() &&
                  reference->network().total_messages() ==
                      sys->network().total_messages();
      for (int k = 0; same && k < kNumMessageKinds; ++k) {
        const MessageKind kind = static_cast<MessageKind>(k);
        same = reference->network().BytesOfKind(kind) ==
               sys->network().BytesOfKind(kind);
      }
      for (TagId item : det_sim.all_items()) {
        if (!same) break;
        same = reference->BelievedPallet(item) == sys->BelievedPallet(item);
      }
      if (!same) {
        identical = false;
        std::printf("MISMATCH: transport=%s threads=%d\n",
                    ToString(transport).c_str(), threads);
      }
    }
  }
  std::printf(
      "determinism: hierarchical replay bit-identical across\n"
      "{in-process, socket} x num_threads {0,1,4}: %s\n",
      identical ? "yes" : "NO");
  report.Set("determinism_matrix_identical", identical);
  bench::FinishReport(report, "hierarchical");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
