// Table 5: communication cost (bytes) of the centralized approach (raw
// readings, delta-encoded then gzipped) versus the None and CR state
// migration methods, across read rates.
//
// Paper's result: CR costs ~3 orders of magnitude less than centralized
// (225 KB vs 126-188 MB at full 4-hour, 0.32M-item scale) and None costs
// zero; centralized bytes grow with the read rate (more readings).
//
// Beyond the paper's table, the distributed columns include ONS directory
// traffic (registrations, moves, transfer-time lookups -- the directory
// load Section 5.2 discusses), broken out as Dir. The None method's
// payload cost stays zero; its wire cost is exactly the directory's.
#include <cstdio>

#include "bench/bench_common.h"
#include "dist/distributed.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader("Table 5: communication cost",
                     "bytes shipped: Centralized vs None vs CR");
  TablePrinter table({"ReadRate", "Centralized", "None(dir)", "CR",
                      "CR(inference)", "CR(dir)", "Ratio(Central/CR)"});
  for (double rr : {0.6, 0.7, 0.8, 0.9}) {
    SupplyChainSim sim(bench::MultiWarehouse(
        rr, /*anomaly_interval=*/0, /*horizon=*/2400,
        /*seed=*/7000 + static_cast<uint64_t>(rr * 10)));
    sim.Run();

    DistributedOptions central;
    central.mode = ProcessingMode::kCentralized;
    DistributedSystem sys_central(&sim, central);
    sys_central.Run();

    DistributedOptions none;
    none.site.migration = MigrationMode::kNone;
    DistributedSystem sys_none(&sim, none);
    sys_none.Run();

    DistributedOptions cr;
    cr.site.migration = MigrationMode::kCollapsed;
    DistributedSystem sys_cr(&sim, cr);
    sys_cr.Run();

    const int64_t central_bytes = sys_central.network().total_bytes();
    const int64_t cr_bytes = sys_cr.network().total_bytes();
    table.AddRow(
        {TablePrinter::Fmt(rr, 1), std::to_string(central_bytes),
         std::to_string(sys_none.network().total_bytes()),
         std::to_string(cr_bytes),
         std::to_string(
             sys_cr.network().BytesOfKind(MessageKind::kInferenceState)),
         std::to_string(
             sys_cr.network().BytesOfKind(MessageKind::kDirectory)),
         TablePrinter::Fmt(
             cr_bytes > 0 ? static_cast<double>(central_bytes) /
                                static_cast<double>(cr_bytes)
                          : 0.0,
             1)});
  }
  table.Print();
  std::printf(
      "expected shape: centralized bytes grow with read rate and dwarf CR;\n"
      "the gap widens with residence time -- at the paper's 4-hour scale it\n"
      "reaches 3 orders of magnitude.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
