// Table 5: communication cost (bytes) of the centralized approach (raw
// readings, delta-encoded then gzipped) versus the None and CR state
// migration methods, across read rates.
//
// Paper's result: CR costs ~3 orders of magnitude less than centralized
// (225 KB vs 126-188 MB at full 4-hour, 0.32M-item scale) and None costs
// zero; centralized bytes grow with the read rate (more readings).
//
// Beyond the paper's table, the distributed columns include ONS directory
// traffic (registrations, moves, transfer-time lookups -- the directory
// load Section 5.2 discusses), broken out as Dir. The directory is sharded
// across the sites (hash of tag -> shard, one shard per site by default),
// so the Dir column is the sum of per-shard link traffic rather than a
// single synthetic node's; the no-cache column shows what the same ops
// cost without the per-site resolver cache (cache hits strictly reduce
// the wire bytes, never the op count). The None method's payload cost
// stays zero; its wire cost is exactly the directory's. A per-shard
// load-balance table for the last read rate follows the main table.
//
// Every byte count is *framed* wire bytes (dist/frame.h: 46 B of header +
// checksum per message), so small-message traffic -- directory records
// especially -- pays its real per-message overhead. Totals are transport-
// backend-invariant: the last read rate's CR run is repeated over the
// loopback socket backend and must reproduce the in-process totals bit
// for bit.
//
// A fifth system per read rate repeats the CR run on a lossy fabric
// (drop 0.05 + reorder, fixed seed) with the ack/retransmit protocol on:
// CR(faulty) is its total, CR(ack) the ack-stream share and CR(retx) the
// retransmitted bytes -- the reliability tax Table 5 would pay on a real
// network (bench_fault_sweep sweeps this dimension).
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "dist/distributed.h"
#include "dist/frame.h"

namespace rfid {
namespace {

int64_t ShardBytesSum(const Ons& ons) {
  int64_t sum = 0;
  for (int s = 0; s < ons.num_shards(); ++s) sum += ons.shard_stats(s).bytes;
  return sum;
}

int Main() {
  bench::PrintHeader("Table 5: communication cost",
                     "bytes shipped: Centralized vs None vs CR");
  TablePrinter table({"ReadRate", "Centralized", "None(dir)", "CR",
                      "CR(inference)", "CR(dir)", "CR(dir,nocache)",
                      "DirHit%", "Ratio(Central/CR)", "CR(faulty)",
                      "CR(ack)", "CR(retx)"});
  TablePrinter shard_table({"Shard", "Host", "Updates", "Lookups",
                            "CacheHits", "Bytes", "Share%"});
  bool backend_invariant = false;
  int64_t cr_messages = 0;
  int64_t cr_total_bytes = 0;
  obs::RunReport report = bench::MakeReport("table5_comm_cost");
  for (double rr : {0.6, 0.7, 0.8, 0.9}) {
    SupplyChainSim sim(bench::MultiWarehouse(
        rr, /*anomaly_interval=*/0, /*horizon=*/2400,
        /*seed=*/7000 + static_cast<uint64_t>(rr * 10)));
    sim.Run();

    // Many systems run back to back; only the representative CR run at the
    // last read rate records the RFID_TRACE Chrome trace (trace = false
    // elsewhere keeps earlier runs from overwriting it).
    DistributedOptions central;
    central.mode = ProcessingMode::kCentralized;
    central.trace = false;
    DistributedSystem sys_central(&sim, central);
    sys_central.Run();

    DistributedOptions none;
    none.site.migration = MigrationMode::kNone;
    none.trace = false;
    DistributedSystem sys_none(&sim, none);
    sys_none.Run();

    DistributedOptions cr;
    cr.site.migration = MigrationMode::kCollapsed;
    cr.trace = rr == 0.9;
    DistributedSystem sys_cr(&sim, cr);
    sys_cr.Run();

    // Same ops with the resolver cache disabled: every Resolve pays wire
    // bytes, reproducing the former single-node directory total (just
    // spread across the per-shard links).
    DistributedOptions cr_nocache = cr;
    cr_nocache.directory_cache = false;
    cr_nocache.trace = false;
    DistributedSystem sys_cr_nc(&sim, cr_nocache);
    sys_cr_nc.Run();

    // The same CR replay on a lossy fabric: seeded drop + reorder, the
    // ack/retransmit protocol auto-enabled. Its extra bytes over the clean
    // CR run are the reliability tax.
    DistributedOptions cr_faulty = cr;
    cr_faulty.trace = false;
    cr_faulty.network.faults = FaultModel{};
    cr_faulty.network.faults.drop = 0.05;
    cr_faulty.network.faults.reorder = 0.02;
    cr_faulty.network.faults.seed = 4242;
    DistributedSystem sys_cr_faulty(&sim, cr_faulty);
    sys_cr_faulty.Run();

    const int64_t central_bytes = sys_central.network().total_bytes();
    const int64_t cr_bytes = sys_cr.network().total_bytes();
    const int64_t dir_bytes =
        sys_cr.network().BytesOfKind(MessageKind::kDirectory);
    const int64_t dir_nocache_bytes =
        sys_cr_nc.network().BytesOfKind(MessageKind::kDirectory);
    const int64_t charged = sys_cr.ons().charged_lookups();
    const int64_t hits = sys_cr.ons().cache_hits();
    const double hit_pct =
        charged + hits > 0
            ? 100.0 * static_cast<double>(hits) /
                  static_cast<double>(charged + hits)
            : 0.0;
    table.AddRow(
        {TablePrinter::Fmt(rr, 1), std::to_string(central_bytes),
         std::to_string(sys_none.network().total_bytes()),
         std::to_string(cr_bytes),
         std::to_string(
             sys_cr.network().BytesOfKind(MessageKind::kInferenceState)),
         std::to_string(dir_bytes), std::to_string(dir_nocache_bytes),
         TablePrinter::Fmt(hit_pct, 1),
         TablePrinter::Fmt(
             cr_bytes > 0 ? static_cast<double>(central_bytes) /
                                static_cast<double>(cr_bytes)
                          : 0.0,
             1),
         std::to_string(sys_cr_faulty.network().total_bytes()),
         std::to_string(
             sys_cr_faulty.network().BytesOfKind(MessageKind::kAck)),
         std::to_string(
             sys_cr_faulty.network().reliable_stats().retransmit_bytes)});

    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("read_rate", rr);
    row.Set("centralized_bytes", central_bytes);
    row.Set("none_bytes", sys_none.network().total_bytes());
    row.Set("cr_bytes", cr_bytes);
    row.Set("cr_inference_bytes",
            sys_cr.network().BytesOfKind(MessageKind::kInferenceState));
    row.Set("cr_directory_bytes", dir_bytes);
    row.Set("cr_directory_nocache_bytes", dir_nocache_bytes);
    row.Set("directory_cache_hit_percent", hit_pct);
    row.Set("cr_faulty_bytes", sys_cr_faulty.network().total_bytes());
    row.Set("cr_faulty_ack_bytes",
            sys_cr_faulty.network().BytesOfKind(MessageKind::kAck));
    row.Set("cr_faulty_retransmit_bytes",
            sys_cr_faulty.network().reliable_stats().retransmit_bytes);
    row.Set("cr_faulty_retransmits",
            sys_cr_faulty.network().reliable_stats().retransmits);
    report.AddRow("read_rates", std::move(row));

    // The representative CR run's phase histograms and per-kind wire
    // counters land in the report (and its Chrome trace, when RFID_TRACE
    // is set, in the trace file named under "trace_path").
    if (rr == 0.9 && sys_cr.telemetry() != nullptr) {
      report.AddMetrics(sys_cr.telemetry()->registry());
      if (sys_cr.telemetry()->tracing()) {
        report.Set("trace_path", sys_cr.telemetry()->trace_path());
      }
    }

    // Backend invariance (last read rate): the same CR replay over real
    // loopback sockets must put bit-identical byte/message totals on the
    // wire -- framing makes the wire size a pure function of the payload.
    if (rr == 0.9) {
      DistributedOptions cr_socket = cr;
      cr_socket.transport = TransportKind::kSocket;
      cr_socket.trace = false;
      DistributedSystem sys_cr_socket(&sim, cr_socket);
      sys_cr_socket.Run();
      backend_invariant =
          sys_cr_socket.network().total_bytes() == cr_bytes &&
          sys_cr_socket.network().total_messages() ==
              sys_cr.network().total_messages();
      for (int k = 0; k < kNumMessageKinds; ++k) {
        const MessageKind kind = static_cast<MessageKind>(k);
        backend_invariant = backend_invariant &&
                            sys_cr_socket.network().BytesOfKind(kind) ==
                                sys_cr.network().BytesOfKind(kind);
      }
      cr_messages = sys_cr.network().total_messages();
      cr_total_bytes = cr_bytes;
    }

    // Per-shard breakdown (kept for the last read rate): the per-link
    // loads that the former single synthetic kDirectory node lumped
    // together. Their byte sum is exactly the Dir column.
    if (rr == 0.9) {
      const Ons& ons = sys_cr.ons();
      const int64_t sum = ShardBytesSum(ons);
      for (int s = 0; s < ons.num_shards(); ++s) {
        const OnsShardStats& st = ons.shard_stats(s);
        shard_table.AddRow(
            {std::to_string(s), std::to_string(ons.ShardHost(s)),
             std::to_string(st.updates), std::to_string(st.charged_lookups),
             std::to_string(st.cache_hits), std::to_string(st.bytes),
             TablePrinter::Fmt(sum > 0 ? 100.0 * static_cast<double>(
                                                     st.bytes) /
                                             static_cast<double>(sum)
                                       : 0.0,
                               1)});
      }
      shard_table.AddRow({"sum", "-", std::to_string(ons.updates()),
                          std::to_string(ons.charged_lookups()),
                          std::to_string(ons.cache_hits()),
                          std::to_string(sum),
                          sum == dir_bytes ? "=Dir" : "MISMATCH"});
    }
  }
  table.Print();
  std::printf(
      "expected shape: centralized bytes grow with read rate and dwarf CR;\n"
      "the gap widens with residence time -- at the paper's 4-hour scale it\n"
      "reaches 3 orders of magnitude. CR(dir) <= CR(dir,nocache): repeat\n"
      "resolutions of unmoved objects are served from per-site resolver\n"
      "caches and cost zero wire bytes. All counts are framed wire bytes.\n"
      "CR(faulty) > CR: the gap is the reliability tax (ack stream CR(ack)\n"
      "plus retransmitted frames CR(retx)) at drop 0.05 + reorder 0.02.\n\n");
  std::printf(
      "wire framing: %zu B/message overhead (%lld CR messages at RR 0.9 ->\n"
      "%lld framing bytes of %lld total); socket backend reproduces the CR\n"
      "totals bit-for-bit: %s\n\n",
      kFrameOverheadBytes, static_cast<long long>(cr_messages),
      static_cast<long long>(cr_messages *
                             static_cast<int64_t>(kFrameOverheadBytes)),
      static_cast<long long>(cr_total_bytes),
      backend_invariant ? "yes" : "NO");
  std::printf("--- directory load per shard (ReadRate 0.9, CR) ---\n");
  shard_table.Print();
  std::printf(
      "expected shape: hash partitioning spreads updates/lookups/bytes\n"
      "roughly evenly across shards (no single-node hotspot); the sum row\n"
      "equals the CR(dir) column above.\n\n");
  bench::FinishReport(report, "table5_comm_cost");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
