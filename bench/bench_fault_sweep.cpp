// Fault sweep: accuracy and wire cost of the CR distributed replay on a
// lossy fabric, across drop rate x reorder delay, plus a site-crash
// scenario. Not a paper table -- the paper assumes reliable links -- but
// the robustness counterpart to Table 5: what the ack/retransmit protocol
// (dist/network.h) costs in bytes and what faults cost in accuracy.
//
// Expected shape: containment error is flat across the sweep (the ARQ
// layer delivers exactly-once, so inference sees the same migrations; only
// arrival timing shifts within an epoch) while total bytes grow with the
// drop rate -- the reliability tax is retransmitted frames plus the ack
// stream. The crash row completes with finite error and visible recovery
// traffic (kRecoveryRequest plus re-sent migration envelopes).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dist/distributed.h"
#include "obs/telemetry.h"

namespace rfid {
namespace {

int64_t CounterValue(const obs::MetricsRegistry& reg,
                     const std::string& name) {
  for (const obs::MetricsRegistry::Entry& e : reg.Entries()) {
    if (e.name == name && e.counter != nullptr) return e.counter->value();
  }
  return 0;
}

struct SweepPoint {
  double drop = 0.0;
  double reorder = 0.0;
  Epoch delay_max = 0;
};

int Main() {
  bench::PrintHeader("Fault sweep: lossy links and site crashes",
                     "accuracy + reliability tax vs drop/reorder rate");
  SupplyChainSim sim(bench::MultiWarehouse(
      /*read_rate=*/0.8, /*anomaly_interval=*/0, /*horizon=*/2400,
      /*seed=*/9100));
  sim.Run();
  const Epoch horizon = sim.config().horizon;

  TablePrinter table({"Drop", "Reorder", "Error%", "Bytes", "Retx",
                      "RetxBytes", "AckBytes", "DupDrops", "Flush",
                      "Delivered"});
  obs::RunReport report = bench::MakeReport("fault");

  const SweepPoint kSweep[] = {
      {0.0, 0.0, 0},  {0.02, 0.0, 0},  {0.05, 0.0, 0},
      {0.02, 0.1, 2}, {0.05, 0.1, 2},  {0.1, 0.2, 8},
  };
  for (const SweepPoint& pt : kSweep) {
    DistributedOptions opts;
    opts.site.migration = MigrationMode::kCollapsed;
    opts.trace = false;
    opts.network.faults = FaultModel{};
    opts.network.faults.drop = pt.drop;
    opts.network.faults.reorder = pt.reorder;
    opts.network.faults.reorder_delay_min = pt.delay_max > 0 ? 1 : 0;
    opts.network.faults.reorder_delay_max = pt.delay_max;
    opts.network.faults.seed = 777;
    DistributedSystem sys(&sim, opts);
    sys.Run();

    const double err = sys.AverageContainmentErrorPercent(/*warmup=*/300);
    const Network& net = sys.network();
    const bool delivered = !net.reliable() || net.AllReliableDelivered();
    table.AddRow(
        {TablePrinter::Fmt(pt.drop, 2), TablePrinter::Fmt(pt.reorder, 2),
         TablePrinter::Fmt(err, 2), std::to_string(net.total_bytes()),
         std::to_string(net.reliable_stats().retransmits),
         std::to_string(net.reliable_stats().retransmit_bytes),
         std::to_string(net.BytesOfKind(MessageKind::kAck)),
         std::to_string(net.reliable_stats().dup_drops),
         std::to_string(sys.reliability_flush_epochs()),
         delivered ? "yes" : "NO"});

    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("drop", pt.drop);
    row.Set("reorder", pt.reorder);
    row.Set("reorder_delay_max", static_cast<int64_t>(pt.delay_max));
    row.Set("containment_error_percent", err);
    row.Set("total_bytes", net.total_bytes());
    row.Set("fault_drops", net.fault_stats().drops);
    row.Set("fault_reorders", net.fault_stats().reorders);
    row.Set("retransmits", net.reliable_stats().retransmits);
    row.Set("retransmit_bytes", net.reliable_stats().retransmit_bytes);
    row.Set("ack_bytes", net.BytesOfKind(MessageKind::kAck));
    row.Set("dup_drops", net.reliable_stats().dup_drops);
    row.Set("flush_epochs", static_cast<int64_t>(
                                sys.reliability_flush_epochs()));
    row.Set("all_delivered", delivered);
    report.AddRow("sweep", std::move(row));
  }
  table.Print();
  std::printf(
      "expected shape: Error%% flat across the sweep (exactly-once delivery\n"
      "hides the loss from inference); Bytes/Retx/AckBytes grow with the\n"
      "drop rate -- the reliability tax. Delivered must read yes on every\n"
      "row.\n\n");

  // Crash scenario: one mid-window crash on the lossy fabric. The victim
  // is the busiest migration target up to the crash epoch, so the
  // recovery path visibly re-requests and re-receives pre-crash envelopes
  // from its peers; recovery traffic and rebuild wall-time land in the
  // counters below.
  {
    const Epoch crash_at = 3 * horizon / 4;
    const Epoch recover_at = std::min<Epoch>(horizon, crash_at + 300);
    std::vector<int> inbound(sim.config().num_warehouses, 0);
    for (const ObjectTransfer& tr : sim.transfers()) {
      if (tr.to != kNoSite && tr.arrive < crash_at) ++inbound[tr.to];
    }
    SiteId victim = 0;
    for (SiteId s = 1; s < (SiteId)inbound.size(); ++s) {
      if (inbound[s] > inbound[victim]) victim = s;
    }
    DistributedOptions opts;
    opts.site.migration = MigrationMode::kCollapsed;
    opts.trace = false;
    opts.network.faults = FaultModel{};
    opts.network.faults.drop = 0.02;
    opts.network.faults.seed = 777;
    opts.crashes.push_back(CrashEvent{victim, crash_at, recover_at});
    DistributedSystem sys(&sim, opts);
    sys.Run();

    const double err = sys.AverageContainmentErrorPercent(/*warmup=*/300);
    const Network& net = sys.network();
    const obs::MetricsRegistry& reg = sys.telemetry()->registry();
    const int64_t resent = CounterValue(reg, "recovery/envelopes_resent");
    const int64_t resent_bytes = CounterValue(reg, "recovery/resent_bytes");
    const int64_t recovery_ns =
        sys.telemetry()->phase_histogram(obs::Phase::kCrashRecovery)
            .Snapshot()
            .sum;
    std::printf(
        "--- crash scenario (site %d down [%lld, %lld), drop 0.02) ---\n",
        victim, static_cast<long long>(crash_at),
        static_cast<long long>(recover_at));
    std::printf(
        "crashes=%lld error=%.2f%% request_bytes=%lld envelopes_resent=%lld\n"
        "resent_bytes=%lld rebuild_ms=%.2f crash_frames_lost=%lld\n\n",
        static_cast<long long>(CounterValue(reg, "crash/crashes")), err,
        static_cast<long long>(
            net.BytesOfKind(MessageKind::kRecoveryRequest)),
        static_cast<long long>(resent), static_cast<long long>(resent_bytes),
        static_cast<double>(recovery_ns) / 1e6,
        static_cast<long long>(net.reliable_stats().crash_frames_lost));

    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("drop", 0.02);
    row.Set("crashes", CounterValue(reg, "crash/crashes"));
    row.Set("containment_error_percent", err);
    row.Set("error_is_finite", !std::isnan(err));
    row.Set("recovery_request_bytes",
            net.BytesOfKind(MessageKind::kRecoveryRequest));
    row.Set("envelopes_resent", resent);
    row.Set("resent_bytes", resent_bytes);
    row.Set("rebuild_ms", static_cast<double>(recovery_ns) / 1e6);
    row.Set("retransmits", net.reliable_stats().retransmits);
    row.Set("crash_frames_lost", net.reliable_stats().crash_frames_lost);
    report.AddRow("crash", std::move(row));
    report.AddMetrics(reg);
  }

  bench::FinishReport(report, "fault");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
