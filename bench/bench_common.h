// Shared workload builders and runners for the per-figure/table bench
// binaries. Every bench prints the same rows/series the paper reports.
//
// Scale: the paper simulates 32,000 items per warehouse for 4 hours on
// 2011-era hardware. The default bench scale is reduced so the full suite
// completes in minutes; set RFID_BENCH_SCALE=2,4,... to grow the workload
// toward paper scale (items and horizon both grow). EXPERIMENTS.md records
// the scale every published number was measured at.
#ifndef RFID_BENCH_BENCH_COMMON_H_
#define RFID_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "baseline/smurf_star.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "dist/network.h"
#include "inference/calibration.h"
#include "inference/evaluate.h"
#include "inference/streaming.h"
#include "obs/report.h"
#include "sim/lab.h"
#include "sim/supply_chain.h"

namespace rfid {
namespace bench {

/// Workload multiplier from RFID_BENCH_SCALE (>= 1).
inline int Scale() {
  const char* env = std::getenv("RFID_BENCH_SCALE");
  if (env == nullptr) return 1;
  int v = std::atoi(env);
  return v < 1 ? 1 : v;
}

/// Optional horizon cap from RFID_BENCH_MAX_HORIZON. The ctest bench_smoke
/// targets set it so every figure/table driver is exercised end to end in
/// seconds; unset (or <= 0) leaves the published horizons untouched.
inline Epoch CapHorizon(Epoch horizon) {
  const char* env = std::getenv("RFID_BENCH_MAX_HORIZON");
  if (env == nullptr) return horizon;
  long v = std::atol(env);
  if (v <= 0) return horizon;
  return horizon < static_cast<Epoch>(v) ? horizon : static_cast<Epoch>(v);
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s (scale=%d; see EXPERIMENTS.md)\n",
              paper.c_str(), Scale());
}

/// Run report pre-filled with the fields every bench shares (scale,
/// transport backend, hardware concurrency), so BENCH_*.json files carry a
/// uniform header and diff cleanly across machines and runs. Benches add
/// their rows with AddRow and a system's telemetry with
/// `report.AddMetrics(sys.telemetry()->registry())`, then FinishReport.
inline obs::RunReport MakeReport(const std::string& bench_name) {
  obs::RunReport report(bench_name);
  report.Set("scale", Scale());
  report.Set("transport", ToString(TransportKindFromEnv()));
  report.Set("hardware_concurrency",
             static_cast<int64_t>(std::thread::hardware_concurrency()));
  return report;
}

/// Writes BENCH_<name>.json into the working directory. A write failure
/// costs the report, not the bench run.
inline void FinishReport(const obs::RunReport& report,
                         const std::string& bench_name) {
  const Status st = obs::WriteReport(report, bench_name);
  if (st.ok()) {
    std::printf("report: BENCH_%s.json\n", bench_name.c_str());
  } else {
    std::fprintf(stderr, "report not written: %s\n", st.ToString().c_str());
  }
}

/// Single-warehouse workload approximating the paper's Appendix C.1 setup,
/// scaled. With the defaults and scale 1 this yields ~2,000 resident items.
inline SupplyChainConfig SingleWarehouse(double read_rate, Epoch horizon,
                                         uint64_t seed = 1) {
  horizon = CapHorizon(horizon);
  SupplyChainConfig cfg;
  cfg.num_warehouses = 1;
  cfg.shelves_per_warehouse = 8;
  cfg.cases_per_pallet = 5;     // Table 2: fixed
  cfg.items_per_case = 20;      // Table 2: fixed
  cfg.pallet_injection_interval = 60;  // Table 2: fixed
  cfg.pallets_per_injection = Scale();
  cfg.entry_dwell = 10;
  cfg.belt_time_per_case = 5;
  cfg.shelf_stay = horizon;  // stable-containment runs: items stay put
  cfg.exit_dwell = 10;
  cfg.read_rate.main = read_rate;
  cfg.read_rate.overlap = 0.5;  // Table 2 default
  cfg.horizon = horizon;
  cfg.seed = seed;
  return cfg;
}

/// Ten-warehouse supply chain (single-source DAG with layers 1-3-3-3),
/// scaled: the paper runs 32,000 items per warehouse for 4 hours; scale 1
/// keeps the same topology with fewer resident items and a shorter horizon.
inline SupplyChainConfig MultiWarehouse(double read_rate,
                                        Epoch anomaly_interval, Epoch horizon,
                                        uint64_t seed) {
  horizon = CapHorizon(horizon);
  SupplyChainConfig cfg;
  cfg.num_warehouses = 10;
  cfg.dag_layers = {1, 3, 3, 3};
  cfg.shelves_per_warehouse = 6;
  cfg.cases_per_pallet = 5;
  cfg.items_per_case = 10;
  cfg.pallet_injection_interval = 60;
  cfg.pallets_per_injection = Scale();
  // Residence long relative to the 300 s inference period, as in the
  // paper's steady state; short dwells make every system look equally
  // blind to just-arrived items.
  cfg.shelf_stay = 1200;
  cfg.transit_time = 60;
  cfg.anomaly_interval = anomaly_interval;
  cfg.read_rate.main = read_rate;
  cfg.read_rate.overlap = 0.5;
  cfg.horizon = horizon;
  cfg.seed = seed;
  return cfg;
}

/// Lab-deployment workload (the Appendix C.2 traces T1..T8) with the smoke
/// horizon cap applied. Build lab benches through this instead of a raw
/// LabConfig so RFID_BENCH_MAX_HORIZON bounds lab replays too.
inline LabConfig LabWorkload(int trace_index, Epoch horizon, uint64_t seed) {
  LabConfig cfg;
  cfg.spec = LabSpecFor(trace_index);
  cfg.horizon = CapHorizon(horizon);
  cfg.seed = seed;
  return cfg;
}

/// Scores one engine run on a finished simulation.
struct SingleSiteScore {
  double containment_error = 0.0;
  double location_error = 0.0;
  double seconds = 0.0;
  size_t buffered = 0;
};

/// Tags that have been in the world for at least `min_age` at epoch `at`.
/// The paper evaluates a warehouse in steady state where just-arrived items
/// (still unpacked, not yet individually observed) are a negligible
/// fraction; at reduced bench scale they would dominate the error, so the
/// steady-state population is evaluated explicitly.
inline std::vector<TagId> SteadyStateTags(const GroundTruth& truth,
                                          const std::vector<TagId>& tags,
                                          Epoch at, Epoch min_age = 300) {
  std::vector<TagId> out;
  for (TagId tag : tags) {
    const auto& ivs = truth.IntervalsOf(tag);
    if (!ivs.empty() && ivs.front().begin + min_age <= at) {
      out.push_back(tag);
    }
  }
  return out;
}

/// Runs streaming inference with explicit options over a materialized
/// single-warehouse trace and scores it at the horizon.
inline SingleSiteScore RunSingleSiteWith(const SupplyChainSim& sim,
                                         const StreamingOptions& opts) {
  StreamingInference si(&sim.model(), &sim.schedule(), opts);
  for (const RawReading& r : sim.site_trace(0).readings()) si.Observe(r);
  si.AdvanceTo(sim.config().horizon);

  SingleSiteScore score;
  score.seconds = si.total_inference_seconds();
  score.buffered = si.buffered_readings();
  const Epoch at = sim.config().horizon - 1;
  score.containment_error = ContainmentErrorPercentOf(
      [&](TagId o) { return si.ContainerOf(o); }, sim.truth(),
      SteadyStateTags(sim.truth(), sim.all_items(), at), at);
  std::vector<TagId> tags =
      SteadyStateTags(sim.truth(), sim.all_cases(), at);
  score.location_error = LocationErrorPercentOf(
      [&](TagId tag, Epoch t) { return si.LocationOf(tag, t); }, sim.truth(),
      tags, sim.config().horizon / 2, at, /*stride=*/20);
  return score;
}

/// Convenience wrapper selecting only the truncation method.
inline SingleSiteScore RunSingleSite(const SupplyChainSim& sim,
                                     TruncationMethod method,
                                     Epoch window_size = 1200,
                                     Epoch recent_history = 600,
                                     Epoch period = 300) {
  StreamingOptions opts;
  opts.truncation = method;
  opts.window_size = window_size;
  opts.recent_history = recent_history;
  opts.inference_period = period;
  return RunSingleSiteWith(sim, opts);
}

/// Converts simulator anomalies into scorable truth changes.
inline std::vector<TrueChange> TruthChanges(const SupplyChainSim& sim) {
  std::vector<TrueChange> out;
  for (const AnomalyRecord& a : sim.anomalies()) {
    out.push_back(TrueChange{a.time, a.item, a.to_case});
  }
  return out;
}

/// Change-detection run: streaming inference with change points enabled.
struct ChangeScore {
  double f_measure = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double seconds = 0.0;
  double seconds_per_run = 0.0;
};

inline ChangeScore RunChangeDetection(const SupplyChainSim& sim,
                                      Epoch recent_history, double threshold,
                                      Epoch period = 300,
                                      Epoch tolerance = 300) {
  StreamingOptions opts;
  opts.truncation = TruncationMethod::kCriticalRegion;
  opts.recent_history = recent_history;
  opts.inference_period = period;
  opts.detect_changes = true;
  opts.change_threshold = threshold;
  StreamingInference si(&sim.model(), &sim.schedule(), opts);
  for (const RawReading& r : sim.site_trace(0).readings()) si.Observe(r);
  si.AdvanceTo(sim.config().horizon);

  ChangeScore score;
  FMeasure fm =
      ScoreChangeDetection(si.all_changes(), TruthChanges(sim), tolerance);
  score.f_measure = fm.Percent();
  score.precision = fm.Precision();
  score.recall = fm.Recall();
  score.seconds = si.total_inference_seconds();
  score.seconds_per_run =
      si.runs() > 0 ? score.seconds / si.runs() : 0.0;
  return score;
}

/// SMURF* change-detection score on the same workload.
inline ChangeScore RunSmurfStarChanges(const SupplyChainSim& sim,
                                       Epoch tolerance = 300) {
  SmurfStar star(&sim.schedule());
  Stopwatch timer;
  RFID_CHECK_OK(star.Run(sim.site_trace(0), 0, sim.config().horizon));
  ChangeScore score;
  score.seconds = timer.ElapsedSeconds();
  std::vector<ChangePointResult> reported;
  for (const SmurfStarChange& ch : star.changes()) {
    reported.push_back(
        ChangePointResult{ch.item, ch.time, kNoTag, ch.new_container, 0.0});
  }
  FMeasure fm = ScoreChangeDetection(reported, TruthChanges(sim), tolerance);
  score.f_measure = fm.Percent();
  score.precision = fm.Precision();
  score.recall = fm.Recall();
  return score;
}

/// Offline threshold calibration against a workload's model/schedule.
inline double CalibratedThreshold(const SupplyChainSim& sim,
                                  Epoch horizon = 600) {
  CalibrationConfig cfg;
  cfg.num_samples = 8;
  cfg.horizon = horizon;
  cfg.num_containers = 4;
  cfg.objects_per_container = 5;
  Rng rng(12345);
  return CalibrateChangeThreshold(sim.model(), sim.schedule(), cfg, rng);
}

}  // namespace bench
}  // namespace rfid

#endif  // RFID_BENCH_BENCH_COMMON_H_
