// google-benchmark microbenchmarks of the hot kernels: the EM engine on
// planted worlds, the change-point scan, trace serialization, gzip (the
// centralized baseline's compressor), pattern-matcher pushes, and the
// centroid diff codec.
#include <benchmark/benchmark.h>

#include "common/compress.h"
#include "common/rng.h"
#include "inference/rfinfer.h"
#include "model/generative.h"
#include "model/read_rate.h"
#include "model/schedule.h"
#include "query/state_sharing.h"
#include "stream/pattern.h"
#include "trace/trace_io.h"

namespace rfid {
namespace {

// A planted world: `containers` groups of `objects_per` objects, horizon T.
Trace PlantedTrace(int containers, int objects_per, Epoch T, double rr,
                   uint64_t seed) {
  auto model = ReadRateModel::Uniform(containers + 2, rr);
  Rng rng(seed);
  Trace trace;
  for (int c = 0; c < containers; ++c) {
    GenerativeScenario scenario;
    scenario.container = TagId::Case(static_cast<uint64_t>(c));
    for (int o = 0; o < objects_per; ++o) {
      scenario.objects.push_back(
          TagId::Item(static_cast<uint64_t>(c * objects_per + o)));
    }
    scenario.location_path.assign(static_cast<size_t>(T),
                                  static_cast<LocationId>(c % (containers)));
    SampleReadings(model, scenario, rng, &trace);
  }
  trace.Seal();
  return trace;
}

void BM_RFInferRun(benchmark::State& state) {
  const int containers = static_cast<int>(state.range(0));
  const Epoch T = 300;
  auto model = ReadRateModel::Uniform(containers + 2, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(containers + 2);
  sched.Finalize(model);
  Trace trace = PlantedTrace(containers, 10, T, 0.8, 42);
  for (auto _ : state) {
    RFInfer engine(&model, &sched);
    benchmark::DoNotOptimize(engine.Run(trace, 0, T - 1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_RFInferRun)->Arg(4)->Arg(16)->Arg(64);

void BM_ChangeStatistic(benchmark::State& state) {
  const int containers = 8;
  const Epoch T = 300;
  auto model = ReadRateModel::Uniform(containers + 2, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(containers + 2);
  sched.Finalize(model);
  Trace trace = PlantedTrace(containers, 10, T, 0.8, 43);
  RFInfer engine(&model, &sched);
  RFID_CHECK_OK(engine.Run(trace, 0, T - 1));
  const auto objects = engine.object_tags();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ChangeStatistic(objects[i]));
    i = (i + 1) % objects.size();
  }
}
BENCHMARK(BM_ChangeStatistic);

void BM_TraceEncode(benchmark::State& state) {
  Trace trace = PlantedTrace(8, 10, 600, 0.8, 44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeTrace(trace));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_TraceEncode);

void BM_TraceDecode(benchmark::State& state) {
  Trace trace = PlantedTrace(8, 10, 600, 0.8, 44);
  auto bytes = EncodeTrace(trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeTrace(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_TraceDecode);

void BM_GzipReadings(benchmark::State& state) {
  Trace trace = PlantedTrace(8, 10, 600, 0.8, 45);
  auto bytes = EncodeTrace(trace);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    RFID_CHECK_OK(Compress(bytes, &out));
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_GzipReadings);

void BM_PatternPush(benchmark::State& state) {
  PatternOptions opts;
  opts.partition_col = 0;
  opts.value_col = 1;
  opts.min_duration = 1 << 30;  // never fire; measure the state machine
  PatternSeqOp pattern(opts);
  Tuple t;
  t.values = {Value{TagId::Item(1)}, Value{20.0}};
  Epoch now = 0;
  for (auto _ : state) {
    t.time = ++now;
    pattern.Push(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternPush);

void BM_DiffEncodeApply(benchmark::State& state) {
  Rng rng(46);
  std::vector<uint8_t> base(512);
  for (auto& b : base) b = static_cast<uint8_t>(rng.NextBounded(256));
  auto target = base;
  for (int i = 0; i < 16; ++i) {
    target[rng.NextBounded(target.size())] =
        static_cast<uint8_t>(rng.NextBounded(256));
  }
  for (auto _ : state) {
    auto diff = DiffEncode(base, target);
    benchmark::DoNotOptimize(DiffApply(base, diff));
  }
}
BENCHMARK(BM_DiffEncodeApply);

}  // namespace
}  // namespace rfid

BENCHMARK_MAIN();
