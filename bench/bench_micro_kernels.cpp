// google-benchmark microbenchmarks of the hot kernels: the EM engine on
// planted worlds, the change-point scan, trace serialization, gzip (the
// centralized baseline's compressor), pattern-matcher pushes, the
// centroid diff codec, and the PR 9 hot-path kernels (arena alloc/reset,
// the arena/SoA window index, zero-copy frame decode, span flush encode).
#include <benchmark/benchmark.h>

#include "common/arena.h"
#include "common/compress.h"
#include "common/rng.h"
#include "dist/frame.h"
#include "dist/site.h"
#include "inference/rfinfer.h"
#include "model/generative.h"
#include "model/read_rate.h"
#include "model/schedule.h"
#include "query/state_sharing.h"
#include "stream/pattern.h"
#include "trace/trace_io.h"

namespace rfid {
namespace {

// A planted world: `containers` groups of `objects_per` objects, horizon T.
Trace PlantedTrace(int containers, int objects_per, Epoch T, double rr,
                   uint64_t seed) {
  auto model = ReadRateModel::Uniform(containers + 2, rr);
  Rng rng(seed);
  Trace trace;
  for (int c = 0; c < containers; ++c) {
    GenerativeScenario scenario;
    scenario.container = TagId::Case(static_cast<uint64_t>(c));
    for (int o = 0; o < objects_per; ++o) {
      scenario.objects.push_back(
          TagId::Item(static_cast<uint64_t>(c * objects_per + o)));
    }
    scenario.location_path.assign(static_cast<size_t>(T),
                                  static_cast<LocationId>(c % (containers)));
    SampleReadings(model, scenario, rng, &trace);
  }
  trace.Seal();
  return trace;
}

void BM_RFInferRun(benchmark::State& state) {
  const int containers = static_cast<int>(state.range(0));
  const Epoch T = 300;
  auto model = ReadRateModel::Uniform(containers + 2, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(containers + 2);
  sched.Finalize(model);
  Trace trace = PlantedTrace(containers, 10, T, 0.8, 42);
  for (auto _ : state) {
    RFInfer engine(&model, &sched);
    benchmark::DoNotOptimize(engine.Run(trace, 0, T - 1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_RFInferRun)->Arg(4)->Arg(16)->Arg(64);

void BM_ChangeStatistic(benchmark::State& state) {
  const int containers = 8;
  const Epoch T = 300;
  auto model = ReadRateModel::Uniform(containers + 2, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(containers + 2);
  sched.Finalize(model);
  Trace trace = PlantedTrace(containers, 10, T, 0.8, 43);
  RFInfer engine(&model, &sched);
  RFID_CHECK_OK(engine.Run(trace, 0, T - 1));
  const auto objects = engine.object_tags();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ChangeStatistic(objects[i]));
    i = (i + 1) % objects.size();
  }
}
BENCHMARK(BM_ChangeStatistic);

void BM_TraceEncode(benchmark::State& state) {
  Trace trace = PlantedTrace(8, 10, 600, 0.8, 44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeTrace(trace));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_TraceEncode);

void BM_TraceDecode(benchmark::State& state) {
  Trace trace = PlantedTrace(8, 10, 600, 0.8, 44);
  auto bytes = EncodeTrace(trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeTrace(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_TraceDecode);

void BM_GzipReadings(benchmark::State& state) {
  Trace trace = PlantedTrace(8, 10, 600, 0.8, 45);
  auto bytes = EncodeTrace(trace);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    RFID_CHECK_OK(Compress(bytes, &out));
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_GzipReadings);

void BM_PatternPush(benchmark::State& state) {
  PatternOptions opts;
  opts.partition_col = 0;
  opts.value_col = 1;
  opts.min_duration = 1 << 30;  // never fire; measure the state machine
  PatternSeqOp pattern(opts);
  Tuple t;
  t.values = {Value{TagId::Item(1)}, Value{20.0}};
  Epoch now = 0;
  for (auto _ : state) {
    t.time = ++now;
    pattern.Push(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternPush);

void BM_DiffEncodeApply(benchmark::State& state) {
  Rng rng(46);
  std::vector<uint8_t> base(512);
  for (auto& b : base) b = static_cast<uint8_t>(rng.NextBounded(256));
  auto target = base;
  for (int i = 0; i < 16; ++i) {
    target[rng.NextBounded(target.size())] =
        static_cast<uint8_t>(rng.NextBounded(256));
  }
  for (auto _ : state) {
    auto diff = DiffEncode(base, target);
    benchmark::DoNotOptimize(DiffApply(base, diff));
  }
}
BENCHMARK(BM_DiffEncodeApply);

// ---- PR 9 hot-path kernels ----

// One window's worth of allocation through the bump arena, then Reset:
// after the first iteration every block is retained, so steady state is
// pure pointer arithmetic -- the contract the per-window index relies on.
void BM_ArenaAllocReset(benchmark::State& state) {
  const size_t chunks = static_cast<size_t>(state.range(0));
  Arena arena;
  for (auto _ : state) {
    for (size_t i = 0; i < chunks; ++i) {
      benchmark::DoNotOptimize(arena.AllocateArray<TagRead>(64));
    }
    arena.Reset();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(chunks * 64));
}
BENCHMARK(BM_ArenaAllocReset)->Arg(16)->Arg(256);

// The window ingest kernel: append a window of readings, Seal (sort +
// CSR index build + columns), sweep every per-tag history. Arg toggles
// the arena/SoA machinery so the old per-tag-heap-vector cost stays
// visible in the same binary.
void BM_WindowIndexSeal(benchmark::State& state) {
  const bool hot = state.range(0) != 0;
  Trace source = PlantedTrace(16, 10, 600, 0.8, 47);
  const std::vector<RawReading>& rs = source.readings();
  Arena arena;
  for (auto _ : state) {
    Trace trace;
    if (hot) trace.SetArena(&arena);
    trace.EnableColumns(hot);
    trace.Append(rs.data(), rs.size());
    trace.Seal();
    size_t total = 0;
    for (TagId tag : trace.Tags()) total += trace.HistoryOf(tag).size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rs.size()));
}
BENCHMARK(BM_WindowIndexSeal)->Arg(0)->Arg(1);

// Frame decode, owning vs zero-copy view: the difference is the payload
// copy the socket pump no longer pays per frame.
void BM_FrameDecode(benchmark::State& state) {
  Frame frame;
  frame.from = 3;
  frame.to = 0;
  frame.kind = MessageKind::kRawReadings;
  frame.send_epoch = 300;
  frame.seq = 7;
  frame.payload.assign(4096, 0xAB);
  const std::vector<uint8_t> wire = EncodeFrameToBytes(frame);
  for (auto _ : state) {
    Frame out;
    size_t consumed = 0;
    RFID_CHECK_OK(DecodeFrame(wire.data(), wire.size(), &out, &consumed));
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_FrameDecode);

void BM_FrameViewDecode(benchmark::State& state) {
  Frame frame;
  frame.from = 3;
  frame.to = 0;
  frame.kind = MessageKind::kRawReadings;
  frame.send_epoch = 300;
  frame.seq = 7;
  frame.payload.assign(4096, 0xAB);
  const std::vector<uint8_t> wire = EncodeFrameToBytes(frame);
  for (auto _ : state) {
    FrameView view;
    size_t consumed = 0;
    RFID_CHECK_OK(
        DecodeFrameView(wire.data(), wire.size(), &view, &consumed));
    benchmark::DoNotOptimize(view);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_FrameViewDecode);

// The centralized boundary flush's per-site unit of work (what the
// pipelined flush overlaps with server compute): delta + gzip encode of
// one pending span of readings.
void BM_FlushEncode(benchmark::State& state) {
  Trace source = PlantedTrace(16, 10, 600, 0.8, 48);
  const std::vector<RawReading>& rs = source.readings();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EncodeReadingBatch(rs.data(), rs.size(), /*compress_level=*/6));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rs.size()));
}
BENCHMARK(BM_FlushEncode);

}  // namespace
}  // namespace rfid

BENCHMARK_MAIN();
