// Figure 5(d): RFINFER versus SMURF* on the eight lab traces T1..T8
// (Appendix C.2): read rate 0.85/0.70, shelf-reader overlap 0.25/0.50,
// and (T5..T8) containment changes. Inference every 5 minutes over a
// 10-minute history, as in the paper.
//
// Paper's result: RFINFER's containment error stays within 5% on T1..T4 and
// peaks at ~13% with all noise factors combined (T8); location error is low
// throughout; SMURF* is far worse on every trace.
#include <cstdio>

#include "baseline/smurf_star.h"
#include "bench/bench_common.h"
#include "inference/evaluate.h"
#include "inference/streaming.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader("Figure 5(d): lab traces T1..T8",
                     "RFINFER vs SMURF* error rates (cont. and location)");
  TablePrinter table({"Trace", "RR", "OR", "Changes", "SMURF* Cont%",
                      "SMURF* Loc%", "RFINFER Cont%", "RFINFER Loc%"});
  for (int t = 1; t <= 8; ++t) {
    LabConfig cfg = bench::LabWorkload(t, /*horizon=*/1500,
                                       7000 + static_cast<uint64_t>(t));
    LabDeployment lab(cfg);
    lab.Run();

    // RFINFER: inference every 5 min over a 10-min history.
    StreamingOptions opts;
    opts.inference_period = 300;
    opts.truncation = TruncationMethod::kCriticalRegion;
    opts.recent_history = 600;
    opts.detect_changes = cfg.spec.with_changes;
    opts.change_threshold = 25.0;
    StreamingInference si(&lab.model(), &lab.schedule(), opts);
    for (const RawReading& r : lab.trace().readings()) si.Observe(r);
    si.AdvanceTo(cfg.horizon);

    SmurfStar star(&lab.schedule());
    RFID_CHECK_OK(star.Run(lab.trace(), 0, cfg.horizon));

    const Epoch at = cfg.horizon - 100;  // before the exit-door shuffle
    ErrorRate rf_cont, ss_cont, rf_loc, ss_loc;
    for (TagId item : lab.items()) {
      if (!lab.truth().PresentAt(item, at)) continue;
      TagId truth = lab.truth().ContainerAt(item, at);
      rf_cont.Add(si.ContainerOf(item) == truth);
      ss_cont.Add(star.ContainerOf(item) == truth);
    }
    for (TagId c : lab.cases()) {
      for (Epoch e = 600; e < at; e += 50) {
        LocationId truth_loc = lab.truth().LocationAt(c, e);
        if (truth_loc == kNoLocation) continue;
        LocationId rf = si.LocationOf(c, e);
        LocationId ss = star.LocationOf(c, e);
        if (rf != kNoLocation) rf_loc.Add(rf == truth_loc);
        if (ss != kNoLocation) ss_loc.Add(ss == truth_loc);
      }
    }
    std::string trace_label = "T";
    trace_label += std::to_string(t);
    table.AddRow({trace_label,
                  TablePrinter::Fmt(cfg.spec.read_rate, 2),
                  TablePrinter::Fmt(cfg.spec.overlap, 2),
                  cfg.spec.with_changes ? "yes" : "no",
                  TablePrinter::Fmt(ss_cont.Percent(), 1),
                  TablePrinter::Fmt(ss_loc.Percent(), 1),
                  TablePrinter::Fmt(rf_cont.Percent(), 1),
                  TablePrinter::Fmt(rf_loc.Percent(), 1)});
  }
  table.Print();
  std::printf(
      "expected shape: RFINFER containment error small on T1-T4, larger\n"
      "with changes (T5-T8, worst when RR low and OR high), always well\n"
      "below SMURF*; location errors low for RFINFER on every trace.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
