// Figure 5(a): containment error of the three history-management methods
// (All history, fixed window W=1200, critical region + recent history) as
// the read rate varies, plus the CR method's location error.
//
// Paper's result: the window method is worst (useful belt observations fall
// out of the window); All and CR are close, with CR slightly better thanks
// to noise removal; location error is low for all.
#include <cstdio>

#include "bench/bench_common.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader(
      "Figure 5(a): truncation methods vs read rate",
      "Containment(W1200) / Containment(All) / Containment(CR) / "
      "Location(CR)");
  TablePrinter table({"ReadRate", "Cont(W1200)%", "Cont(All)%", "Cont(CR)%",
                      "Loc(CR)%"});
  for (double rr : {0.6, 0.7, 0.8, 0.9, 1.0}) {
    SupplyChainSim sim(bench::SingleWarehouse(rr, /*horizon=*/1500,
                                              /*seed=*/200));
    sim.Run();
    auto w = bench::RunSingleSite(sim, TruncationMethod::kWindow,
                                  /*window_size=*/1200);
    auto all = bench::RunSingleSite(sim, TruncationMethod::kAll);
    auto cr = bench::RunSingleSite(sim, TruncationMethod::kCriticalRegion,
                                   /*window_size=*/1200,
                                   /*recent_history=*/600);
    table.AddRow({TablePrinter::Fmt(rr, 1),
                  TablePrinter::Fmt(w.containment_error),
                  TablePrinter::Fmt(all.containment_error),
                  TablePrinter::Fmt(cr.containment_error),
                  TablePrinter::Fmt(cr.location_error)});
  }
  table.Print();
  std::printf(
      "expected shape: W1200 worst; All and CR close (CR often best);\n"
      "Location(CR) near zero throughout.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
