// Figure 5(e): distributed inference error versus read rate for the three
// systems: no state transfer ("None"), critical-region/collapsed migration
// ("CR"), and the centralized baseline.
//
// Paper's result: None has a high error rate; CR performs close to
// centralized at every read rate.
#include <cstdio>

#include "bench/bench_common.h"
#include "dist/distributed.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader("Figure 5(e): distributed inference vs read rate",
                     "error rate of None / CR / Centralized, 10 warehouses");
  TablePrinter table({"ReadRate", "None%", "CR%", "Centralized%",
                      "Items"});
  for (double rr : {0.6, 0.7, 0.8, 0.9}) {
    SupplyChainSim sim(bench::MultiWarehouse(
        rr, /*anomaly_interval=*/0, /*horizon=*/2400,
        /*seed=*/5000 + static_cast<uint64_t>(rr * 10)));
    sim.Run();

    DistributedOptions none;
    none.site.migration = MigrationMode::kNone;
    DistributedSystem sys_none(&sim, none);
    sys_none.Run();

    DistributedOptions cr;
    cr.site.migration = MigrationMode::kCollapsed;
    DistributedSystem sys_cr(&sim, cr);
    sys_cr.Run();

    DistributedOptions central;
    central.mode = ProcessingMode::kCentralized;
    DistributedSystem sys_central(&sim, central);
    sys_central.Run();

    table.AddRow(
        {TablePrinter::Fmt(rr, 1),
         TablePrinter::Fmt(sys_none.AverageContainmentErrorPercent(600)),
         TablePrinter::Fmt(sys_cr.AverageContainmentErrorPercent(600)),
         TablePrinter::Fmt(sys_central.AverageContainmentErrorPercent(600)),
         std::to_string(sim.all_items().size())});
  }
  table.Print();
  std::printf(
      "expected shape: None highest error; CR close to Centralized at\n"
      "every read rate.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
