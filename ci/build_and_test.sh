#!/usr/bin/env bash
# CI entry point: the ROADMAP tier-1 verify, a traced telemetry smoke run
# (Chrome trace + BENCH_*.json report validated with python3), a
# socket-transport pass over the distributed layer (the same binaries
# re-run with every Network on the loopback socket backend -- results must
# be bit-identical), then an
# ASan/UBSan Debug pass over the unit/integration suite (plus the socket
# pass under ASan, which also leak-checks the fd/buffer handling), then a
# ThreadSanitizer Debug pass over the distributed layer (the parallel site
# executor and the determinism contract of DistributedSystem::Run).
#
# Usage: ci/build_and_test.sh [--skip-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_SANITIZE=0
[[ "${1:-}" == "--skip-sanitize" ]] && SKIP_SANITIZE=1

echo "==> Docs: intra-repo markdown links in README/ROADMAP/docs resolve"
check_links() {
  local fail=0 f target path
  for f in README.md ROADMAP.md docs/*.md; do
    [[ -e "$f" ]] || continue
    while IFS= read -r target; do
      [[ -z "$target" ]] && continue
      case "$target" in
        http://* | https://* | mailto:* | "#"*) continue ;;
      esac
      path="${target%%#*}"
      [[ -z "$path" ]] && continue
      if [[ ! -e "$(dirname "$f")/$path" ]]; then
        echo "broken link in $f: ($target)"
        fail=1
      fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed 's/^](//; s/)$//')
  done
  return "$fail"
}
check_links || { echo "Docs link check FAILED"; exit 1; }

echo "==> Static analysis: -Werror build, repo lint, clang stages if present"
ci/static_analysis.sh

echo "==> Tier-1: Release build + full ctest (tests, bench smoke)"
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "==> Telemetry: traced smoke bench + machine-readable report validate"
# One traced run of the comm-cost bench: the Chrome trace must be valid
# JSON with trace slices, and the run report must carry the phase
# histograms and per-kind wire counters (the observability contract).
(cd build && RFID_TRACE=trace_ci.json RFID_BENCH_MAX_HORIZON=900 \
  ./bench_table5_comm_cost >/dev/null)
python3 - <<'EOF'
import json
trace = json.load(open("build/trace_ci.json"))
events = trace["traceEvents"]
slices = [e for e in events if e.get("ph") == "X"]
assert trace["displayTimeUnit"] == "ms"
assert slices, "trace has no duration slices"
assert all("epoch" in e["args"] for e in slices)
report = json.load(open("build/BENCH_table5_comm_cost.json"))
assert report["report_version"] == 1
hists = report["metrics"]["histograms"]
assert hists["phase/inference"]["count"] > 0
assert any(k.startswith("phase/") and hists[k]["p99"] is not None
           for k in hists)
counters = report["metrics"]["counters"]
assert any(k.startswith("net/bytes/kind=") for k in counters)
print("trace: %d slices; report: %d histograms, %d counters -- OK"
      % (len(slices), len(hists), len(counters)))
EOF
rm -f build/trace_ci.json

echo "==> Socket transport: distributed suites over real loopback sockets"
# smoke_bench_hierarchical rides along: the hierarchical replay's own
# {in-process, socket} x threads determinism matrix, re-run with every
# Network defaulting to the socket backend.
(cd build && RFID_TRANSPORT=socket \
  ctest --output-on-failure \
  -R '^(dist_test|executor_test|frame_test|fault_test|smoke_bench_hierarchical)$')

echo "==> Faults: lossy smoke replay (drop 0.05 + reorder + one crash)"
# The fault-sweep bench on the real lossy fabric: the run must complete,
# accuracy must stay finite (the crash row records error_is_finite), the
# retransmit counters must be nonzero wherever frames were dropped, and
# every sweep row must report exactly-once convergence.
(cd build && RFID_BENCH_MAX_HORIZON=900 ./bench_fault_sweep >/dev/null)
python3 - <<'EOF'
import json, math
report = json.load(open("build/BENCH_fault.json"))
sweep = report["rows"]["sweep"]
assert sweep, "fault sweep produced no rows"
for row in sweep:
    err = row["containment_error_percent"]
    assert err is not None and not math.isnan(err), row
    assert row["all_delivered"], row
    if row["drop"] > 0:
        assert row["fault_drops"] > 0, row
        assert row["retransmits"] > 0, row
        assert row["ack_bytes"] > 0, row
crash = report["rows"]["crash"][0]
assert crash["crashes"] >= 1
assert crash["error_is_finite"]
assert crash["recovery_request_bytes"] > 0
assert crash["retransmits"] > 0
print("fault sweep: %d rows + crash scenario (err=%.2f%%) -- OK"
      % (len(sweep), crash["containment_error_percent"]))
EOF

echo "==> Durability: durable example replay + log_verify over its audit logs"
# A real replay with durable sites (checkpoints + frame WAL + hash-chained
# audit logs) into a scoped scratch directory, then the log_verify CLI
# over every site's audit log: structural decode, chain recomputation from
# genesis, and the per-site HMAC must all hold. The env var is scoped to
# this one run -- exporting it globally would silently flip every crash
# test onto the durable path and void their kRecoveryRequest assertions
# (durability_test covers that path; dist_test/fault_test must keep
# covering the peer-assisted one).
DUR_DIR="$(mktemp -d)"
(cd build && RFID_DURABILITY_DIR="${DUR_DIR}" RFID_DURABILITY_FSYNC=off \
  ./supply_chain_distributed >/dev/null)
build/log_verify "${DUR_DIR}"
# Tamper canary: corrupt one byte of one record and log_verify must fail
# and name the broken link -- the CLI's detection, not just the library's.
FIRST_LOG="$(ls -S "${DUR_DIR}"/site_*/audit.log | head -n 1)"
python3 - "$FIRST_LOG" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
assert data, "audit log is empty"
data[len(data) // 2] ^= 0x01
open(path, "wb").write(bytes(data))
EOF
if build/log_verify "${DUR_DIR}" >/dev/null 2>&1; then
  echo "log_verify missed a tampered audit log"; exit 1
fi
echo "durability: audit logs verified, tamper detected -- OK"
rm -rf "${DUR_DIR}"

echo "==> Bench orchestrator: quick epoch-rate protocol + schema + regression"
# Warmup + repeat-3-take-median over bench_epoch_rate via the orchestrator
# (the same entry point developers use), compared against the tracked
# baseline in bench/results/ -- a >10% rate drop prints a WARNING, never a
# failure: CI boxes differ. Nothing is recorded from CI; tracked results
# are written deliberately, per PR. The re-validation below is
# independent of the orchestrator's own schema check, and additionally
# requires every hot-path configuration to have replayed bit-identically
# to the all-off baseline (matches_baseline).
python3 tools/bench/run_benchmarks.py --quick --bench epoch_rate --no-record
python3 - <<'EOF'
import json
report = json.load(open("build/BENCH_epoch_rate.json"))
assert report["report_version"] == 1
assert report["bench"] == "epoch_rate"
rows = report["rows"]["epoch_rate"]
assert rows, "epoch-rate bench produced no rows"
for row in rows:
    assert row["epochs_per_sec"] > 0, row
    assert row["matches_baseline"], f"nondeterministic hot path: {row}"
print("epoch-rate: %d rows, all bit-identical to baseline -- OK" % len(rows))
EOF

if [[ "${SKIP_SANITIZE}" == "1" ]]; then
  echo "==> Skipping sanitizer pass (--skip-sanitize)"
  exit 0
fi

echo "==> Debug + ASan/UBSan: unit and integration tests"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DRFID_SANITIZE=ON
cmake --build build-asan -j "${JOBS}"
# Bench smoke targets are excluded here: sanitized EM over bench-scale
# workloads multiplies runtime without adding memory-safety coverage beyond
# what the test suite already drives.
(cd build-asan && ctest --output-on-failure -j "${JOBS}" -LE bench_smoke)
(cd build-asan && RFID_TRANSPORT=socket \
  ctest --output-on-failure -R '^(dist_test|executor_test|frame_test|fault_test)$')

echo "==> Debug + TSan: distributed executor + determinism + ONS tests"
# TSan and ASan cannot share a build; only the threaded distributed layer
# needs the data-race pass, so build and run just those binaries.
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DRFID_TSAN=ON
# obs_test rides along: the metrics registry's lock-free hot path and
# concurrent-registration contract are exactly what TSan is for.
cmake --build build-tsan -j "${JOBS}" \
  --target dist_test executor_test fault_test ons_test obs_test
(cd build-tsan && \
  ctest --output-on-failure \
  -R '^(dist_test|executor_test|fault_test|ons_test|obs_test)$')

echo "==> CI green"
