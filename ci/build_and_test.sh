#!/usr/bin/env bash
# CI entry point: the ROADMAP tier-1 verify, a socket-transport pass over
# the distributed layer (the same binaries re-run with every Network on
# the loopback socket backend -- results must be bit-identical), then an
# ASan/UBSan Debug pass over the unit/integration suite (plus the socket
# pass under ASan, which also leak-checks the fd/buffer handling), then a
# ThreadSanitizer Debug pass over the distributed layer (the parallel site
# executor and the determinism contract of DistributedSystem::Run).
#
# Usage: ci/build_and_test.sh [--skip-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_SANITIZE=0
[[ "${1:-}" == "--skip-sanitize" ]] && SKIP_SANITIZE=1

echo "==> Docs: intra-repo markdown links in README/ROADMAP/docs resolve"
check_links() {
  local fail=0 f target path
  for f in README.md ROADMAP.md docs/*.md; do
    [[ -e "$f" ]] || continue
    while IFS= read -r target; do
      [[ -z "$target" ]] && continue
      case "$target" in
        http://* | https://* | mailto:* | "#"*) continue ;;
      esac
      path="${target%%#*}"
      [[ -z "$path" ]] && continue
      if [[ ! -e "$(dirname "$f")/$path" ]]; then
        echo "broken link in $f: ($target)"
        fail=1
      fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed 's/^](//; s/)$//')
  done
  return "$fail"
}
check_links || { echo "Docs link check FAILED"; exit 1; }

echo "==> Tier-1: Release build + full ctest (tests, bench smoke)"
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "==> Socket transport: distributed suites over real loopback sockets"
# smoke_bench_hierarchical rides along: the hierarchical replay's own
# {in-process, socket} x threads determinism matrix, re-run with every
# Network defaulting to the socket backend.
(cd build && RFID_TRANSPORT=socket \
  ctest --output-on-failure \
  -R '^(dist_test|executor_test|frame_test|smoke_bench_hierarchical)$')

if [[ "${SKIP_SANITIZE}" == "1" ]]; then
  echo "==> Skipping sanitizer pass (--skip-sanitize)"
  exit 0
fi

echo "==> Debug + ASan/UBSan: unit and integration tests"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DRFID_SANITIZE=ON
cmake --build build-asan -j "${JOBS}"
# Bench smoke targets are excluded here: sanitized EM over bench-scale
# workloads multiplies runtime without adding memory-safety coverage beyond
# what the test suite already drives.
(cd build-asan && ctest --output-on-failure -j "${JOBS}" -LE bench_smoke)
(cd build-asan && RFID_TRANSPORT=socket \
  ctest --output-on-failure -R '^(dist_test|executor_test|frame_test)$')

echo "==> Debug + TSan: distributed executor + determinism + ONS tests"
# TSan and ASan cannot share a build; only the threaded distributed layer
# needs the data-race pass, so build and run just those binaries.
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DRFID_TSAN=ON
cmake --build build-tsan -j "${JOBS}" \
  --target dist_test executor_test ons_test
(cd build-tsan && \
  ctest --output-on-failure -R '^(dist_test|executor_test|ons_test)$')

echo "==> CI green"
