#!/usr/bin/env bash
# Static-analysis stage (docs/ARCHITECTURE.md "Static analysis"):
#
#   1. Warnings-as-errors build: src/ under -Wall -Wextra -Wshadow
#      -Wconversion -Werror (RFID_WERROR=ON). Always runs -- any
#      C++17-era compiler enforces it.
#   2. Repo-invariant lint: tools/lint/rfid_lint.py (MessageKind/Phase
#      enum coverage, determinism purity in src/dist/, NaN-when-
#      unmeasured accessors). Always runs -- needs only python3.
#   3. Clang thread-safety analysis: a clang build of src/ with
#      -Wthread-safety -Werror=thread-safety, checking the GUARDED_BY /
#      REQUIRES / capability annotations in common/thread_annotations.h.
#      Skipped with a notice when clang++ is not installed.
#   4. clang-tidy over src/ bench/ tests/ (.clang-tidy profile,
#      warnings-as-errors). Skipped when clang-tidy is not installed.
#   5. clang-format --dry-run -Werror over the same trees (.clang-format).
#      Skipped when clang-format is not installed.
#
# Runtime budget: stages 1-2 add ~1 compile of src/ plus a <5s python
# scan on top of the tier-1 build. Stages 3-5 (when clang is present)
# roughly double that -- one extra src/ compile plus a tidy pass that
# dominates at ~1-2 min on a 4-core runner. Total stays under the
# sanitizer passes that follow in build_and_test.sh.
#
# Usage: ci/static_analysis.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FAILED=0

echo "==> Static analysis 1/5: -Werror build of src/ (RFID_WERROR=ON)"
cmake -B build-werror -S . -DRFID_WERROR=ON >/dev/null
cmake --build build-werror -j "${JOBS}" --target rfid_core

echo "==> Static analysis 2/5: repo-invariant lint (tools/lint/rfid_lint.py)"
python3 tools/lint/rfid_lint.py --root .

if command -v clang++ >/dev/null 2>&1; then
  echo "==> Static analysis 3/5: clang thread-safety analysis of src/"
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DRFID_WERROR=ON >/dev/null
  cmake --build build-tsa -j "${JOBS}" --target rfid_core
else
  echo "==> Static analysis 3/5: SKIPPED (clang++ not installed;" \
       "thread-safety annotations not machine-checked on this runner)"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "==> Static analysis 4/5: clang-tidy (src/ bench/ tests/)"
  # Reuse (or create) a clang compile database so tidy sees real flags.
  if [[ ! -f build-tsa/compile_commands.json ]]; then
    cmake -B build-tsa -S . \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t TIDY_SOURCES < <(find src bench tests \
    -name '*.cc' -o -name '*.cpp' | sort)
  clang-tidy -p build-tsa --quiet "${TIDY_SOURCES[@]}" || FAILED=1
else
  echo "==> Static analysis 4/5: SKIPPED (clang-tidy not installed)"
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "==> Static analysis 5/5: clang-format check (no reformat)"
  mapfile -t FMT_SOURCES < <(find src bench tests \
    -name '*.cc' -o -name '*.cpp' -o -name '*.h' | sort)
  clang-format --dry-run -Werror "${FMT_SOURCES[@]}" || FAILED=1
else
  echo "==> Static analysis 5/5: SKIPPED (clang-format not installed)"
fi

if [[ "${FAILED}" != "0" ]]; then
  echo "Static analysis FAILED"
  exit 1
fi
echo "==> Static analysis green"
