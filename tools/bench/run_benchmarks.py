#!/usr/bin/env python3
"""Bench orchestrator: warmup + repeat-N-take-median wrapper over the
BENCH_*.json-emitting bench binaries, with a tracked results trajectory.

Protocol per bench:
  1. run the binary --warmup times (discarded; warms page cache, JIT-free
     but still settles CPU frequency/thermals),
  2. run it --repeat times, parsing BENCH_<name>.json after each run,
  3. aggregate: numeric row fields become the median across repeats
     (non-numeric fields must agree across repeats or the run fails --
     a config field that drifts between repeats is a bug, not noise),
  4. validate the merged report against the report_version-1 schema,
  5. copy it into --results-dir keyed by UTC date + git commit and append
     one summary line to trajectory.jsonl.

Regression policy: if the previous tracked result for a bench has a row
with an epochs_per_sec (or items_per_second) field that is >10% faster
than this run, print a WARNING -- never a failure; machines differ, CI
boxes doubly so. Hard failures are reserved for missing binaries, crashed
benches, and schema violations.

--git-commit REF builds REF in an isolated git worktree and runs the same
protocol there, printing a side-by-side comparison and recording both
points in the trajectory (labelled by their commits).

Examples:
  tools/bench/run_benchmarks.py --bench epoch_rate
  tools/bench/run_benchmarks.py --quick --bench epoch_rate \
      --results-dir /tmp/r            # CI smoke: no tracked writes
  tools/bench/run_benchmarks.py --bench epoch_rate --git-commit HEAD~1
"""

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
from datetime import datetime, timezone

REPORT_VERSION = 1
DEFAULT_BENCHES = ["epoch_rate"]
RATE_FIELDS = ("epochs_per_sec", "items_per_second", "readings_per_sec")
REGRESSION_THRESHOLD = 0.10


def log(msg):
    print(f"[bench] {msg}", flush=True)


def fail(msg):
    print(f"[bench] ERROR: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


def git(args, cwd):
    return subprocess.run(["git"] + args, cwd=cwd, check=True,
                          capture_output=True, text=True).stdout.strip()


def current_commit(repo_root):
    try:
        return git(["rev-parse", "--short=12", "HEAD"], repo_root)
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "nogit"


def validate_schema(report, bench):
    """Report_version-1 shape (src/obs/report.h). Returns error or None."""
    if not isinstance(report, dict):
        return "report is not a JSON object"
    if report.get("report_version") != REPORT_VERSION:
        return f"report_version != {REPORT_VERSION}"
    if report.get("bench") != bench:
        return f"bench field {report.get('bench')!r} != {bench!r}"
    rows = report.get("rows")
    if not isinstance(rows, dict) or not rows:
        return "rows missing or empty"
    for section, entries in rows.items():
        if not isinstance(entries, list) or not entries:
            return f"rows[{section!r}] is not a non-empty list"
        for entry in entries:
            if not isinstance(entry, dict):
                return f"rows[{section!r}] entry is not an object"
    return None


def run_bench_once(binary, cwd, env, pin):
    cmd = [binary]
    if pin:
        taskset = shutil.which("taskset")
        if taskset is None:
            fail("--pin requested but taskset is not available")
        cmd = [taskset, "-c", pin] + cmd
    proc = subprocess.run(cmd, cwd=cwd, env=env,
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                          text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        fail(f"{os.path.basename(binary)} exited {proc.returncode}")
    return proc.stdout


def merge_median(reports):
    """Median-merges the repeat runs' reports.

    Numeric row fields -> median across repeats; bools and strings must
    be identical across repeats. Top-level scalars and metrics come from
    the first run (they describe configuration, not timing).
    """
    merged = json.loads(json.dumps(reports[0]))  # deep copy
    for section, entries in merged["rows"].items():
        for i, entry in enumerate(entries):
            for key, value in entry.items():
                samples = [r["rows"][section][i][key] for r in reports]
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    if any(s != value for s in samples):
                        fail(f"non-numeric field rows[{section}][{i}]"
                             f".{key} drifted across repeats: {samples}")
                    continue
                entry[key] = statistics.median(samples)
    return merged


def run_protocol(bench, build_dir, warmup, repeat, pin, env_extra):
    binary = os.path.join(build_dir, f"bench_{bench}")
    if not os.path.isfile(binary):
        fail(f"bench binary not found: {binary} (build it first)")
    env = dict(os.environ)
    env.update(env_extra)
    for i in range(warmup):
        log(f"{bench}: warmup {i + 1}/{warmup}")
        run_bench_once(binary, build_dir, env, pin)
    reports = []
    report_path = os.path.join(build_dir, f"BENCH_{bench}.json")
    for i in range(repeat):
        log(f"{bench}: repeat {i + 1}/{repeat}")
        run_bench_once(binary, build_dir, env, pin)
        try:
            with open(report_path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"cannot read {report_path}: {e}")
        err = validate_schema(report, bench)
        if err:
            fail(f"{report_path}: schema violation: {err}")
        reports.append(report)
    return merge_median(reports)


def rate_rows(report):
    """(section, index, field, value) for every rate field in the report."""
    out = []
    for section, entries in report.get("rows", {}).items():
        for i, entry in enumerate(entries):
            for field in RATE_FIELDS:
                if isinstance(entry.get(field), (int, float)):
                    out.append((section, i, entry.get("label", str(i)),
                                field, float(entry[field])))
                    break  # one rate per row
    return out


def previous_result(results_dir, bench):
    bench_dir = os.path.join(results_dir, bench)
    if not os.path.isdir(bench_dir):
        return None, None
    names = sorted(n for n in os.listdir(bench_dir) if n.endswith(".json"))
    if not names:
        return None, None
    path = os.path.join(bench_dir, names[-1])
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f), names[-1]
    except (OSError, json.JSONDecodeError):
        return None, None


def check_regression(bench, merged, results_dir):
    prev, prev_name = previous_result(results_dir, bench)
    if prev is None:
        log(f"{bench}: no previous tracked result; skipping regression "
            "check")
        return
    prev_rates = {(s, i): (label, field, v)
                  for s, i, label, field, v in rate_rows(prev)}
    warned = False
    for s, i, label, field, now in rate_rows(merged):
        if (s, i) not in prev_rates:
            continue
        _, _, before = prev_rates[(s, i)]
        if before <= 0:
            continue
        drop = (before - now) / before
        if drop > REGRESSION_THRESHOLD:
            warned = True
            log(f"WARNING: {bench} [{s}] '{label}' {field} regressed "
                f"{100 * drop:.1f}% vs {prev_name} "
                f"({before:.1f} -> {now:.1f})")
    if not warned:
        log(f"{bench}: no >{100 * REGRESSION_THRESHOLD:.0f}% regression "
            f"vs {prev_name}")


def record_result(bench, merged, results_dir, commit, utc_date, label=None):
    bench_dir = os.path.join(results_dir, bench)
    os.makedirs(bench_dir, exist_ok=True)
    suffix = f"_{label}" if label else ""
    name = f"{utc_date}_{commit}{suffix}.json"
    path = os.path.join(bench_dir, name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=False)
        f.write("\n")
    log(f"{bench}: tracked result -> {path}")
    line = {
        "utc_date": utc_date,
        "commit": commit,
        "bench": bench,
        "rates": {f"{s}/{label_}/{field}": v
                  for s, _, label_, field, v in rate_rows(merged)},
    }
    with open(os.path.join(results_dir, "trajectory.jsonl"), "a",
              encoding="utf-8") as f:
        f.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def build_worktree(repo_root, ref, benches):
    """Checks out `ref` into a temp worktree and builds the benches."""
    tmp = tempfile.mkdtemp(prefix="rfid-bench-")
    wt = os.path.join(tmp, "wt")
    log(f"building {ref} in isolated worktree {wt}")
    subprocess.run(["git", "worktree", "add", "--detach", wt, ref],
                   cwd=repo_root, check=True)
    build = os.path.join(wt, "build")
    subprocess.run(["cmake", "-B", build, "-S", wt,
                    "-DCMAKE_BUILD_TYPE=Release"],
                   check=True, stdout=subprocess.DEVNULL)
    targets = []
    for b in benches:
        targets += ["--target", f"bench_{b}"]
    subprocess.run(["cmake", "--build", build, "-j"] + targets, check=True,
                   stdout=subprocess.DEVNULL)
    return tmp, wt, build


def remove_worktree(repo_root, tmp, wt):
    subprocess.run(["git", "worktree", "remove", "--force", wt],
                   cwd=repo_root, check=False)
    shutil.rmtree(tmp, ignore_errors=True)


def compare(bench, ours, theirs, ref):
    log(f"{bench}: HEAD vs {ref}")
    theirs_rates = {(s, i): v for s, i, _, _, v in rate_rows(theirs)}
    for s, i, label, field, now in rate_rows(ours):
        before = theirs_rates.get((s, i))
        if before is None or before <= 0:
            continue
        delta = 100.0 * (now - before) / before
        log(f"  [{s}] {label}: {field} {before:.1f} -> {now:.1f} "
            f"({delta:+.1f}%)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--bench", action="append", default=None,
                    help=f"bench name (repeatable); default "
                         f"{DEFAULT_BENCHES}")
    ap.add_argument("--warmup", type=int, default=1)
    ap.add_argument("--repeat", type=int, default=5)
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: warmup 1, repeat 3, capped horizon")
    ap.add_argument("--pin", default=None,
                    help="CPU list for taskset -c (e.g. '0-3')")
    ap.add_argument("--results-dir", default="bench/results")
    ap.add_argument("--git-commit", default=None,
                    help="also build+run this ref in a worktree and "
                         "compare")
    ap.add_argument("--max-horizon", type=int, default=None,
                    help="sets RFID_BENCH_MAX_HORIZON for every run")
    ap.add_argument("--scale", type=int, default=None,
                    help="sets RFID_BENCH_SCALE for every run")
    ap.add_argument("--no-record", action="store_true",
                    help="skip the tracked copy + trajectory append")
    args = ap.parse_args()

    benches = args.bench or DEFAULT_BENCHES
    warmup, repeat = args.warmup, args.repeat
    env_extra = {}
    if args.quick:
        warmup, repeat = 1, 3
        env_extra.setdefault("RFID_BENCH_MAX_HORIZON", "900")
    if args.max_horizon is not None:
        env_extra["RFID_BENCH_MAX_HORIZON"] = str(args.max_horizon)
    if args.scale is not None:
        env_extra["RFID_BENCH_SCALE"] = str(args.scale)

    repo_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    build_dir = os.path.abspath(args.build_dir)
    results_dir = os.path.abspath(args.results_dir)
    commit = current_commit(repo_root)
    utc_date = datetime.now(timezone.utc).strftime("%Y%m%d")
    log(f"commit={commit} utc={utc_date} warmup={warmup} repeat={repeat} "
        f"env={env_extra or '{}'}")

    baseline = None
    if args.git_commit:
        tmp, wt, ref_build = build_worktree(repo_root, args.git_commit,
                                            benches)
        try:
            baseline = {}
            for bench in benches:
                baseline[bench] = run_protocol(bench, ref_build, warmup,
                                               repeat, args.pin, env_extra)
        finally:
            remove_worktree(repo_root, tmp, wt)

    for bench in benches:
        merged = run_protocol(bench, build_dir, warmup, repeat, args.pin,
                              env_extra)
        merged["orchestrator"] = {
            "warmup": warmup,
            "repeat": repeat,
            "pin": args.pin,
            "commit": commit,
            "utc_date": utc_date,
            "env": env_extra,
        }
        check_regression(bench, merged, results_dir)
        if baseline is not None:
            ref_commit = git(["rev-parse", "--short=12", args.git_commit],
                             repo_root)
            compare(bench, merged, baseline[bench], args.git_commit)
            if not args.no_record:
                baseline[bench]["orchestrator"] = {
                    "warmup": warmup, "repeat": repeat, "pin": args.pin,
                    "commit": ref_commit, "utc_date": utc_date,
                    "env": env_extra,
                }
                record_result(bench, baseline[bench], results_dir,
                              ref_commit, utc_date, label="ref")
        if not args.no_record:
            record_result(bench, merged, results_dir, commit, utc_date)
    log("done")


if __name__ == "__main__":
    main()
