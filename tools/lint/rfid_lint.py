#!/usr/bin/env python3
"""Repo-invariant linter for the RFID reproduction.

Enforces domain rules no generic analyzer knows (registered as the
`rfid_lint` ctest; see docs/ARCHITECTURE.md "Static analysis"):

  kind-coverage      Every MessageKind enumerator in src/dist/frame.h must
                     (a) have a `case MessageKind::kX:` in frame.cc's
                     ToString switch -- that string names the wire kind in
                     telemetry metrics ("net/bytes/kind=<name>") and
                     reports -- and (b) be used somewhere in src/dist/
                     outside frame.{h,cc}: an enumerator nobody sends or
                     handles is dead wire protocol. `kNumMessageKinds`
                     must equal the enumerator count (Network's per-kind
                     byte accounting arrays are sized by it).

  phase-coverage     Every Phase enumerator in src/obs/telemetry.h must
                     have a `case Phase::kX:` in telemetry.cc's PhaseName
                     switch (the trace-track / metric name), and
                     `kNumPhases` must equal the enumerator count.

  determinism-rand   No rand(), srand(), std::random_device, or
                     drand48-family calls in deterministic replay paths
                     (src/dist/): fault fates and everything else that
                     feeds results must stay pure functions of
                     seed/seq/attempt (common/rng.h SplitMix64).

  determinism-clock  No wall-clock reads (time(), std::time,
                     chrono::system_clock, gettimeofday, clock_gettime
                     with a realtime clock, localtime, gmtime) in
                     src/dist/. steady_clock is fine -- telemetry times
                     with it, and it never feeds back into results.

  unordered-iter     No iteration over std::unordered_{map,set} objects
                     in src/dist/: iteration order is
                     implementation-defined, and an accumulation or send
                     loop over it silently breaks the bit-identical
                     replay contract. Keyed lookups are fine. Iterations
                     that are provably order-independent (e.g. keyed
                     writes into another map, fd close loops) carry an
                     explicit `// lint:allow(unordered-iter): <reason>`
                     on the same or the preceding line -- the vetted
                     suppression list IS the code.

  nan-convention     Accuracy accessors (functions named *ErrorPercent)
                     must return NaN when nothing was measured, never a
                     fake-perfect 0: the body must mention NaN (or
                     delegate to a *ErrorPercent overload that does). An
                     empty run is not a perfect one.

  durability-fsync   In src/dist/ files that open files for writing (the
                     durable-storage modules: WAL segments, checkpoints,
                     the audit log), every raw write primitive -- an
                     open() with O_WRONLY/O_RDWR, fopen() in a write
                     mode, write()/pwrite()/fwrite(), rename() -- must
                     sit inside a region bracketed by
                     `// lint:durable-io-begin(<name>)` ...
                     `// lint:durable-io-end`: the audited writers that
                     pair every byte with the configured fsync policy
                     (dist/durability.cc). A stray write that bypasses
                     them can reorder past the WAL's append-before-apply
                     contract and silently void crash recovery. Files
                     that never open a file for writing (e.g. the socket
                     transport's fd writes) are out of scope. Unbalanced
                     or nested markers are findings;
                     `lint:allow(durability-fsync): <reason>` escapes.

  hot-loop-alloc     Inside regions bracketed by
                     `// lint:hot-loop-begin(<name>)` ...
                     `// lint:hot-loop-end` (the per-reading window
                     loops: index scatter, batch split, co-location
                     counting), no per-element heap allocation: no
                     `new` / `make_unique` / `make_shared`, and no
                     `push_back`/`emplace_back` into a container that
                     was not `reserve`d earlier in the file. These loops
                     run once per reading per window -- the arena/SoA
                     hot path exists precisely so they don't allocate.
                     Amortized-constant pushes (cleared-and-reused
                     vectors at steady-state capacity) carry
                     `// lint:allow(hot-loop-alloc): <reason>`.
                     Unbalanced or nested markers are findings.

Usage:
  rfid_lint.py --root <repo>         lint the tree (exit 1 on findings)
  rfid_lint.py --root <repo> --list  print the rule ids and exit

Suppressions: `lint:allow(<rule-id>): reason` in a comment on the same
line or the line directly above the finding. Suppressions without a
reason are themselves findings.
"""

import argparse
import os
import re
import sys

RULES = (
    "kind-coverage",
    "phase-coverage",
    "determinism-rand",
    "determinism-clock",
    "unordered-iter",
    "nan-convention",
    "durability-fsync",
    "hot-loop-alloc",
)

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)(:?\s*(\S.*)?)$")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based; 0 = whole-file
        self.rule = rule
        self.message = message

    def render(self, root):
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def read_lines(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def strip_comment(line):
    """Drops // comments and the contents of string literals (keeps
    structure) so token scans don't fire inside either."""
    out = []
    i = 0
    in_str = None
    while i < len(line):
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < len(line) and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def allowed(lines, idx, rule):
    """True when line idx (0-based) or the contiguous comment block above
    it carries a lint:allow(<rule>) suppression. Returns
    (allowed, finding_or_None): a reasonless suppression is itself a
    finding."""
    candidates = [idx]
    j = idx - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        candidates.append(j)
        j -= 1
    for j in candidates:
        m = ALLOW_RE.search(lines[j])
        if m and m.group(1) == rule:
            if not m.group(3):
                return True, (j + 1, "suppression without a reason")
            return True, None
    return False, None


def parse_enum(text, enum_name):
    """Returns the enumerator names of `enum class <enum_name>` in order."""
    m = re.search(
        r"enum\s+class\s+" + enum_name + r"\s*(?::[^{]+)?\{(.*?)\}\s*;",
        text,
        re.S,
    )
    if not m:
        return None
    body = re.sub(r"//[^\n]*", "", m.group(1))
    names = []
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        names.append(part.split("=")[0].strip())
    return names


def parse_count(text, const_name):
    m = re.search(const_name + r"\s*=\s*(\d+)", text)
    return int(m.group(1)) if m else None


def check_enum_coverage(root, findings):
    # ---- MessageKind ----
    frame_h = os.path.join(root, "src/dist/frame.h")
    frame_cc = os.path.join(root, "src/dist/frame.cc")
    if os.path.exists(frame_h):
        header = "\n".join(read_lines(frame_h))
        kinds = parse_enum(header, "MessageKind")
        if kinds is None:
            findings.append(
                Finding(frame_h, 0, "kind-coverage",
                        "cannot parse enum class MessageKind"))
            kinds = []
        count = parse_count(header, r"kNumMessageKinds")
        if count is not None and kinds and count != len(kinds):
            findings.append(
                Finding(frame_h, 0, "kind-coverage",
                        f"kNumMessageKinds is {count} but MessageKind has "
                        f"{len(kinds)} enumerators -- per-kind accounting "
                        "arrays are mis-sized"))
        impl = "\n".join(read_lines(frame_cc)) if os.path.exists(
            frame_cc) else ""
        dist_dir = os.path.join(root, "src/dist")
        other = []
        for name in sorted(os.listdir(dist_dir)):
            if name in ("frame.h", "frame.cc"):
                continue
            p = os.path.join(dist_dir, name)
            if os.path.isfile(p) and name.endswith((".h", ".cc")):
                other.append("\n".join(read_lines(p)))
        other_text = "\n".join(other)
        for kind in kinds:
            if not re.search(r"case\s+MessageKind::" + kind + r"\s*:", impl):
                findings.append(
                    Finding(frame_cc if impl else frame_h, 0,
                            "kind-coverage",
                            f"MessageKind::{kind} has no case in frame.cc "
                            "ToString -- its wire bytes would be reported "
                            "under no name"))
            if not re.search(r"MessageKind::" + kind + r"\b", other_text):
                findings.append(
                    Finding(frame_h, 0, "kind-coverage",
                            f"MessageKind::{kind} is never used outside "
                            "frame.{h,cc} -- nobody sends or handles it"))

    # ---- Phase ----
    tel_h = os.path.join(root, "src/obs/telemetry.h")
    tel_cc = os.path.join(root, "src/obs/telemetry.cc")
    if os.path.exists(tel_h):
        header = "\n".join(read_lines(tel_h))
        phases = parse_enum(header, "Phase")
        if phases is None:
            findings.append(
                Finding(tel_h, 0, "phase-coverage",
                        "cannot parse enum class Phase"))
            phases = []
        count = parse_count(header, r"kNumPhases")
        if count is not None and phases and count != len(phases):
            findings.append(
                Finding(tel_h, 0, "phase-coverage",
                        f"kNumPhases is {count} but Phase has "
                        f"{len(phases)} enumerators"))
        impl = "\n".join(read_lines(tel_cc)) if os.path.exists(tel_cc) else ""
        for phase in phases:
            if not re.search(r"case\s+Phase::" + phase + r"\s*:", impl):
                findings.append(
                    Finding(tel_cc if impl else tel_h, 0, "phase-coverage",
                            f"Phase::{phase} has no case in telemetry.cc "
                            "PhaseName -- its trace slices would be "
                            "unnamed"))


BANNED_RAND = re.compile(
    r"(?<![\w:])(?:std::)?(?:(?:rand|srand|rand_r|drand48|lrand48|"
    r"mrand48)\s*\(|random_device\b)")
BANNED_CLOCK = re.compile(
    r"(?<![\w:])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"
    r"|\bsystem_clock\b"
    r"|(?<![\w:])(?:gettimeofday|localtime|gmtime)\s*\("
    r"|\bclock_gettime\s*\(\s*CLOCK_REALTIME")
UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set)\s*<.*>\s*&?\s*(\w+)\s*"
    r"(?:GUARDED_BY\s*\([^)]*\)\s*)?(?:=|;|\{)")
RANGE_FOR = re.compile(r"for\s*\(.*:\s*(?:this->)?(\w+)\s*\)")
ITER_FOR = re.compile(
    r"for\s*\(\s*auto\s+\w+\s*=\s*(?:this->)?(\w+)\.(?:c?begin)\s*\(\)")


def collect_unordered_names(paths):
    names = set()
    for p in paths:
        for line in read_lines(p):
            m = UNORDERED_DECL.search(strip_comment(line))
            if m:
                names.add(m.group(1))
    return names


def check_determinism(root, findings):
    dist_dir = os.path.join(root, "src/dist")
    if not os.path.isdir(dist_dir):
        return
    paths = [
        os.path.join(dist_dir, n) for n in sorted(os.listdir(dist_dir))
        if n.endswith((".h", ".cc"))
    ]
    unordered = collect_unordered_names(paths)
    for path in paths:
        lines = read_lines(path)
        for idx, raw in enumerate(lines):
            line = strip_comment(raw)
            if BANNED_RAND.search(line):
                ok, extra = allowed(lines, idx, "determinism-rand")
                if extra:
                    findings.append(
                        Finding(path, extra[0], "determinism-rand", extra[1]))
                if not ok:
                    findings.append(
                        Finding(path, idx + 1, "determinism-rand",
                                "nondeterministic RNG in a replay path; "
                                "use the seeded SplitMix64 (common/rng.h)"))
            if BANNED_CLOCK.search(line):
                ok, extra = allowed(lines, idx, "determinism-clock")
                if extra:
                    findings.append(
                        Finding(path, extra[0], "determinism-clock",
                                extra[1]))
                if not ok:
                    findings.append(
                        Finding(path, idx + 1, "determinism-clock",
                                "wall-clock read in a replay path; use the "
                                "replay epoch (or steady_clock for "
                                "telemetry only)"))
            for pat in (RANGE_FOR, ITER_FOR):
                m = pat.search(line)
                if m and m.group(1) in unordered:
                    ok, extra = allowed(lines, idx, "unordered-iter")
                    if extra:
                        findings.append(
                            Finding(path, extra[0], "unordered-iter",
                                    extra[1]))
                    if not ok:
                        findings.append(
                            Finding(path, idx + 1, "unordered-iter",
                                    f"iteration over unordered container "
                                    f"'{m.group(1)}' in a replay path: "
                                    "order is implementation-defined; use "
                                    "an ordered map or suppress with a "
                                    "reason if provably order-independent"))


FUNC_DEF = re.compile(
    r"^[\w:&<>,\s*]*?\b(?:double|float)\s+[\w:]*?(\w*ErrorPercent)\s*\("
)
ANY_DOUBLE_DEF = re.compile(
    r"^[\w:&<>,\s*]*?\b(?:double|float)\s+[\w:]*?(\w+)\s*\("
)
CALLEE = re.compile(r"\b(\w+)\s*\(")


def function_body(lines, start_idx):
    """Returns the text of the brace-balanced body starting at the first
    '{' at or after start_idx (and the 1-based line of that '{')."""
    depth = 0
    body = []
    opened = False
    for i in range(start_idx, len(lines)):
        line = strip_comment(lines[i])
        for c in line:
            if c == "{":
                depth += 1
                opened = True
            elif c == "}":
                depth -= 1
        body.append(line)
        if opened and depth <= 0:
            return "\n".join(body)
        if not opened and ";" in line:
            return None  # declaration, not a definition
    return "\n".join(body)


def nan_returning_functions(src):
    """Names of double/float-returning functions in src/ whose bodies
    mention NaN, closed transitively over delegation: a function that
    only calls a NaN-returning helper inherits its behavior (e.g. the
    accessors over ErrorRate::Percent)."""
    defs = []  # (name, body)
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            lines = read_lines(os.path.join(dirpath, name))
            for idx, raw in enumerate(lines):
                m = ANY_DOUBLE_DEF.search(strip_comment(raw))
                if not m:
                    continue
                body = function_body(lines, idx)
                if body:
                    defs.append((m.group(1), body))
    nan_set = {n for n, b in defs if re.search(r"(?i)nan", b)}
    changed = True
    while changed:
        changed = False
        for n, b in defs:
            if n in nan_set:
                continue
            if any(c in nan_set for c in CALLEE.findall(b) if c != n):
                nan_set.add(n)
                changed = True
    return nan_set


def check_nan_convention(root, findings):
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        return
    nan_set = nan_returning_functions(src)
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith(".cc"):
                continue
            path = os.path.join(dirpath, name)
            lines = read_lines(path)
            for idx, raw in enumerate(lines):
                m = FUNC_DEF.search(strip_comment(raw))
                if not m:
                    continue
                body = function_body(lines, idx)
                if body is None:
                    continue
                if re.search(r"(?i)nan", body):
                    continue
                # Delegation to a NaN-returning helper (or another
                # *ErrorPercent accessor) inherits the convention.
                callees = set(CALLEE.findall(body)) - {m.group(1)}
                if callees & nan_set:
                    continue
                if any(c.endswith("ErrorPercent") for c in callees):
                    continue
                ok, extra = allowed(lines, idx, "nan-convention")
                if extra:
                    findings.append(
                        Finding(path, extra[0], "nan-convention", extra[1]))
                if ok:
                    continue
                findings.append(
                    Finding(path, idx + 1, "nan-convention",
                            f"{m.group(1)} never returns NaN: an accuracy "
                            "accessor with nothing measured must answer "
                            "NaN, not a fake-perfect value"))


DUR_BEGIN = re.compile(r"lint:durable-io-begin\(([\w-]+)\)")
DUR_END = re.compile(r"lint:durable-io-end\b")
OPEN_TOKEN = re.compile(r"(?<![\w:.>])(?:::)?open\s*\(")
WRITE_MODE = re.compile(r"O_(?:WRONLY|RDWR)")
FOPEN_WRITE = re.compile(r"(?<![\w:.>])fopen\s*\([^;{]*,\s*\"[wa]")
RAW_WRITE = re.compile(r"(?<![\w:.>])(?:::)?(?:write|pwrite|fwrite)\s*\(")
RAW_RENAME = re.compile(r"(?<![\w:.>])(?:::)?rename\s*\(")


def check_durable_io(root, findings):
    dist_dir = os.path.join(root, "src/dist")
    if not os.path.isdir(dist_dir):
        return
    for name in sorted(os.listdir(dist_dir)):
        if not name.endswith((".h", ".cc")):
            continue
        path = os.path.join(dist_dir, name)
        lines = read_lines(path)
        stripped = [strip_comment(l) for l in lines]
        # Scope gate: only modules that open files for writing are durable
        # storage; a socket transport's fd writes never open a file.
        text = "\n".join(stripped)
        gated = bool(WRITE_MODE.search(text) or FOPEN_WRITE.search(text))
        region = None  # (name, 1-based begin line)
        for idx, raw in enumerate(lines):
            mb = DUR_BEGIN.search(raw)
            if mb:
                if region is not None:
                    findings.append(Finding(
                        path, idx + 1, "durability-fsync",
                        f"durable-io-begin({mb.group(1)}) opens inside "
                        f"unclosed region '{region[0]}' (line "
                        f"{region[1]}); regions do not nest"))
                region = (mb.group(1), idx + 1)
                continue
            if DUR_END.search(raw):
                if region is None:
                    findings.append(Finding(
                        path, idx + 1, "durability-fsync",
                        "durable-io-end without a matching "
                        "durable-io-begin"))
                region = None
                continue
            if not gated or region is not None:
                continue
            line = stripped[idx]
            hits = []
            if OPEN_TOKEN.search(line):
                # open() calls wrap; the mode flags may sit on the next
                # line.
                joined = line
                if idx + 1 < len(stripped):
                    joined += " " + stripped[idx + 1]
                if WRITE_MODE.search(joined):
                    hits.append("open() for writing")
            if FOPEN_WRITE.search(line):
                hits.append("fopen() in a write mode")
            if RAW_WRITE.search(line):
                hits.append("raw write")
            if RAW_RENAME.search(line):
                hits.append("rename()")
            for what in hits:
                ok, extra = allowed(lines, idx, "durability-fsync")
                if extra:
                    findings.append(Finding(
                        path, extra[0], "durability-fsync", extra[1]))
                if not ok:
                    findings.append(Finding(
                        path, idx + 1, "durability-fsync",
                        f"{what} outside a lint:durable-io region in a "
                        "durable storage module: WAL/checkpoint/audit "
                        "bytes must flow through the audited writers "
                        "that pair them with the fsync policy, or carry "
                        "a reasoned suppression"))
        if region is not None:
            findings.append(Finding(
                path, region[1], "durability-fsync",
                f"durable-io-begin({region[0]}) is never closed; add "
                "// lint:durable-io-end"))


HOT_BEGIN = re.compile(r"lint:hot-loop-begin\(([\w-]+)\)")
HOT_END = re.compile(r"lint:hot-loop-end\b")
HOT_NEW = re.compile(r"(?<![\w:.>])new\s+[\w:(<]")
HOT_MAKE = re.compile(r"\bmake_(?:unique|shared)\s*<")
HOT_PUSH = re.compile(
    r"\b(\w+)(?:\[[^\]]*\])?\s*(?:\.|->)\s*(?:push_back|emplace_back)\s*\(")


def has_earlier_reserve(lines, idx, container):
    """True when `container.reserve(` (or ->reserve) appears on a line
    before idx -- the capacity was provisioned outside the hot loop."""
    pat = re.compile(
        r"\b" + re.escape(container) +
        r"(?:\[[^\]]*\])?\s*(?:\.|->)\s*reserve\s*\(")
    return any(pat.search(strip_comment(l)) for l in lines[:idx])


def check_hot_loops(root, findings):
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        return
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            lines = read_lines(path)
            region = None  # (name, 1-based begin line)
            for idx, raw in enumerate(lines):
                mb = HOT_BEGIN.search(raw)
                if mb:
                    if region is not None:
                        findings.append(Finding(
                            path, idx + 1, "hot-loop-alloc",
                            f"hot-loop-begin({mb.group(1)}) opens inside "
                            f"unclosed region '{region[0]}' (line "
                            f"{region[1]}); regions do not nest"))
                    region = (mb.group(1), idx + 1)
                    continue
                if HOT_END.search(raw):
                    if region is None:
                        findings.append(Finding(
                            path, idx + 1, "hot-loop-alloc",
                            "hot-loop-end without a matching "
                            "hot-loop-begin"))
                    region = None
                    continue
                if region is None:
                    continue
                line = strip_comment(raw)
                hits = []
                if HOT_NEW.search(line) or HOT_MAKE.search(line):
                    hits.append("per-element heap allocation")
                m = HOT_PUSH.search(line)
                if m and not has_earlier_reserve(lines, idx, m.group(1)):
                    hits.append(f"push into '{m.group(1)}' with no "
                                "preceding reserve")
                for what in hits:
                    ok, extra = allowed(lines, idx, "hot-loop-alloc")
                    if extra:
                        findings.append(Finding(
                            path, extra[0], "hot-loop-alloc", extra[1]))
                    if not ok:
                        findings.append(Finding(
                            path, idx + 1, "hot-loop-alloc",
                            f"{what} inside hot loop '{region[0]}': "
                            "this runs once per reading per window -- "
                            "provision up front (arena / reserve) or "
                            "suppress with a reason if amortized"))
            if region is not None:
                findings.append(Finding(
                    path, region[1], "hot-loop-alloc",
                    f"hot-loop-begin({region[0]}) is never closed; add "
                    "// lint:hot-loop-end"))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", required=True, help="repository root")
    ap.add_argument("--list", action="store_true", help="print rule ids")
    args = ap.parse_args(argv)
    if args.list:
        for rule in RULES:
            print(rule)
        return 0
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"rfid_lint: no such directory: {root}", file=sys.stderr)
        return 2

    findings = []
    check_enum_coverage(root, findings)
    check_determinism(root, findings)
    check_nan_convention(root, findings)
    check_durable_io(root, findings)
    check_hot_loops(root, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render(root))
    if findings:
        print(f"rfid_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("rfid_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
