// Verifies a durable site's tamper-evident audit log (dist/durability.h):
// structural decode, hash-chain recomputation from genesis, and per-record
// HMAC check under the site's signing key.
//
// Usage:
//   log_verify <audit.log> <site-id>    verify one site's log
//   log_verify <durability-root>        verify every <root>/site_*/audit.log
//
// Exit status: 0 when every log verifies, 1 on the first broken link
// (the offending record index is printed), 2 on usage/IO errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "dist/durability.h"

namespace {

const char* KindName(rfid::AuditRecord::Kind kind) {
  switch (kind) {
    case rfid::AuditRecord::Kind::kAlert:
      return "alert";
    case rfid::AuditRecord::Kind::kMovement:
      return "movement";
  }
  return "unknown";
}

// Returns 0 when the log verifies, 1 when any link is broken.
int VerifyOne(const std::string& path, rfid::SiteId site) {
  const rfid::AuditVerifyResult result =
      rfid::VerifyAuditLog(path, rfid::SiteDurability::SiteKey(site));
  if (!result.ok) {
    std::fprintf(stderr, "%s: FAIL: %s", path.c_str(),
                 result.error.c_str());
    if (result.first_bad_record >= 0) {
      std::fprintf(stderr, " (first broken link: record %lld)",
                   static_cast<long long>(result.first_bad_record));
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  std::printf("%s: OK (%lld records, chain %s)\n", path.c_str(),
              static_cast<long long>(result.records),
              rfid::ToHex(result.final_chain).c_str());
  std::vector<rfid::AuditRecord> records;
  if (rfid::ReadAuditLog(path, &records).ok()) {
    long long alerts = 0;
    long long movements = 0;
    for (const rfid::AuditRecord& r : records) {
      (r.kind == rfid::AuditRecord::Kind::kAlert ? alerts : movements) += 1;
      (void)KindName(r.kind);
    }
    std::printf("  site %d: %lld alerts, %lld movements\n",
                static_cast<int>(site), alerts, movements);
  }
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <audit.log> <site-id>\n"
               "       %s <durability-root>\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3) {
    char* end = nullptr;
    const long site = std::strtol(argv[2], &end, 10);
    if (end == argv[2] || *end != '\0' || site < 0) return Usage(argv[0]);
    return VerifyOne(argv[1], static_cast<rfid::SiteId>(site));
  }
  if (argc != 2) return Usage(argv[0]);

  // Directory mode: verify every site under <root>/site_<id>/audit.log.
  namespace fs = std::filesystem;
  std::error_code ec;
  int verified = 0;
  int failed = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(argv[1], ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("site_", 0) != 0) continue;
    char* end = nullptr;
    const long site = std::strtol(name.c_str() + 5, &end, 10);
    if (end == name.c_str() + 5 || *end != '\0' || site < 0) continue;
    const fs::path log = entry.path() / "audit.log";
    if (!fs::exists(log)) continue;
    if (VerifyOne(log.string(), static_cast<rfid::SiteId>(site)) == 0) {
      ++verified;
    } else {
      ++failed;
    }
  }
  if (ec) {
    std::fprintf(stderr, "%s: %s\n", argv[1], ec.message().c_str());
    return 2;
  }
  if (verified == 0 && failed == 0) {
    std::fprintf(stderr, "%s: no site_*/audit.log found\n", argv[1]);
    return 2;
  }
  std::printf("%d log(s) verified, %d failed\n", verified, failed);
  return failed == 0 ? 0 : 1;
}
